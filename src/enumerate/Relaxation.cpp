//===- Relaxation.cpp - The ⊏ order between executions -------------------------==//

#include "enumerate/Relaxation.h"

#include <algorithm>
#include <numeric>
#include <optional>

using namespace tmw;

namespace {

/// Renumber transaction classes densely (dropping emptied classes) and
/// remap the atomic-transaction mask accordingly.
void compactTxnClasses(Execution &X) {
  int Map[kMaxTxns];
  for (unsigned I = 0; I < kMaxTxns; ++I)
    Map[I] = -1;
  uint32_t NewMask = 0;
  int Next = 0;
  for (unsigned E = 0; E < X.size(); ++E) {
    int C = X.Txn[E];
    if (C == kNoClass)
      continue;
    if (Map[C] == -1) {
      Map[C] = Next++;
      if ((X.AtomicTxns >> C) & 1)
        NewMask |= uint32_t(1) << Map[C];
    }
    X.Txn[E] = Map[C];
  }
  X.AtomicTxns = NewMask;
}

} // namespace

Execution tmw::removeEvent(const Execution &X, EventId E) {
  Execution Y(X.size() - 1);
  // Old id -> new id.
  std::vector<int> Map(X.size(), -1);
  unsigned Next = 0;
  for (unsigned A = 0; A < X.size(); ++A)
    if (A != E)
      Map[A] = static_cast<int>(Next++);

  for (unsigned A = 0; A < X.size(); ++A) {
    if (A == E)
      continue;
    Y.event(Map[A]) = X.event(A);
    Y.Txn[Map[A]] = X.Txn[A];
    Y.Cr[Map[A]] = X.Cr[A];
  }
  Y.AtomicTxns = X.AtomicTxns;

  auto CopyRel = [&](const Relation &Src, Relation &Dst) {
    Src.forEachPair([&](EventId A, EventId B) {
      if (A != E && B != E)
        Dst.insert(Map[A], Map[B]);
    });
  };
  CopyRel(X.Po, Y.Po);
  CopyRel(X.Rf, Y.Rf);
  CopyRel(X.Co, Y.Co);
  CopyRel(X.Addr, Y.Addr);
  CopyRel(X.Data, Y.Data);
  CopyRel(X.Ctrl, Y.Ctrl);
  CopyRel(X.Rmw, Y.Rmw);
  compactTxnClasses(Y);
  return Y;
}

namespace {

/// Downgrade alternatives for one event under the given architecture.
void appendDowngrades(const Execution &X, EventId E, Arch A,
                      std::vector<Execution> &Out) {
  const Event &Ev = X.event(E);
  auto WithOrder = [&](MemOrder MO) {
    Execution Y = X;
    Y.event(E).Order = MO;
    Out.push_back(Y);
  };
  auto WithFence = [&](FenceKind FK) {
    Execution Y = X;
    Y.event(E).Fence = FK;
    Out.push_back(Y);
  };

  switch (A) {
  case Arch::SC:
  case Arch::TSC:
  case Arch::X86:
    break;
  case Arch::Power:
    if (Ev.isFence() && Ev.Fence == FenceKind::Sync)
      WithFence(FenceKind::LwSync);
    break;
  case Arch::Armv8:
    if (Ev.isRead() && Ev.Order == MemOrder::Acquire)
      WithOrder(MemOrder::NonAtomic);
    if (Ev.isWrite() && Ev.Order == MemOrder::Release)
      WithOrder(MemOrder::NonAtomic);
    if (Ev.isFence() && Ev.Fence == FenceKind::Dmb) {
      WithFence(FenceKind::DmbLd);
      WithFence(FenceKind::DmbSt);
    }
    break;
  case Arch::Cpp: {
    // One step down the C++ consistency-mode lattice.
    bool IsRmwHalf =
        X.Rmw.domain().contains(E) || X.Rmw.range().contains(E);
    switch (Ev.Order) {
    case MemOrder::SeqCst:
      if (Ev.isRead())
        WithOrder(MemOrder::Acquire);
      else if (Ev.isWrite())
        WithOrder(MemOrder::Release);
      else
        WithOrder(MemOrder::AcqRel);
      break;
    case MemOrder::AcqRel:
      WithOrder(MemOrder::Acquire);
      WithOrder(MemOrder::Release);
      break;
    case MemOrder::Acquire:
    case MemOrder::Release:
      WithOrder(MemOrder::Relaxed);
      break;
    case MemOrder::Relaxed:
      // RMW halves must stay atomic.
      if (!IsRmwHalf && Ev.isMemoryAccess())
        WithOrder(MemOrder::NonAtomic);
      break;
    case MemOrder::NonAtomic:
      break;
    }
    break;
  }
  }
}

} // namespace

std::vector<Execution> tmw::relaxOneStep(const Execution &X,
                                         const Vocabulary &V) {
  std::vector<Execution> Out;

  // (i) Remove an event.
  for (unsigned E = 0; E < X.size(); ++E)
    Out.push_back(removeEvent(X, E));

  // (ii) Remove a dependency edge. For ctrl (forward-closed), removing the
  // earliest edge of a read keeps the remaining targets a po-suffix.
  X.Addr.forEachPair([&](EventId A, EventId B) {
    Execution Y = X;
    Y.Addr.erase(A, B);
    Out.push_back(Y);
  });
  X.Data.forEachPair([&](EventId A, EventId B) {
    Execution Y = X;
    Y.Data.erase(A, B);
    Out.push_back(Y);
  });
  for (EventId R : X.Ctrl.domain()) {
    EventSet Targets = X.Ctrl.successors(R);
    // Earliest target: the one with no ctrl-target po-before it.
    for (EventId T : Targets) {
      if (!(X.Po.compose(Relation::identityOn(EventSet::singleton(T),
                                              X.size()))
                .domain() &
            Targets)
               .empty())
        continue;
      Execution Y = X;
      Y.Ctrl.erase(R, T);
      Out.push_back(Y);
    }
  }
  X.Rmw.forEachPair([&](EventId A, EventId B) {
    Execution Y = X;
    Y.Rmw.erase(A, B);
    Out.push_back(Y);
  });

  // (iii) Downgrade an event.
  for (unsigned E = 0; E < X.size(); ++E)
    appendDowngrades(X, E, V.A, Out);

  // (v) Shrink a transaction at either end.
  for (unsigned C = 0; C < X.numTxns(); ++C) {
    std::vector<EventId> Members;
    for (unsigned E = 0; E < X.size(); ++E)
      if (X.Txn[E] == static_cast<int>(C))
        Members.push_back(E);
    if (Members.empty())
      continue;
    std::sort(Members.begin(), Members.end(), [&X](EventId A, EventId B) {
      return X.Po.contains(A, B);
    });
    for (EventId Boundary : {Members.front(), Members.back()}) {
      Execution Y = X;
      Y.Txn[Boundary] = kNoClass;
      compactTxnClasses(Y);
      Out.push_back(Y);
      if (Members.size() == 1)
        break; // front == back: one child only
    }
  }

  // (iii') Downgrade an atomic{} transaction to a relaxed one (C++ only).
  if (V.A == Arch::Cpp)
    for (unsigned C = 0; C < X.numTxns(); ++C)
      if ((X.AtomicTxns >> C) & 1) {
        Execution Y = X;
        Y.AtomicTxns &= ~(uint32_t(1) << C);
        Out.push_back(Y);
      }

  // Keep only well-formed children.
  Out.erase(std::remove_if(
                Out.begin(), Out.end(),
                [](const Execution &Y) { return Y.checkWellFormed(); }),
            Out.end());
  return Out;
}

bool tmw::isMinimallyInconsistent(const ExecutionAnalysis &A,
                                  const MemoryModel &M, const Vocabulary &V) {
  if (M.consistent(A))
    return false;
  // Each relaxation child is checked through a per-thread analysis arena:
  // retargeting via reset() is a generation bump, where the implicit
  // `Execution -> ExecutionAnalysis` conversion would construct (and
  // zero) a fresh ~25 KB cache block per child. The arena's target
  // dangles between calls (the children are locals); it is never read
  // before the next reset().
  static thread_local std::optional<ExecutionAnalysis> Arena;
  for (const Execution &Y : relaxOneStep(A.execution(), V)) {
    if (!Arena)
      Arena.emplace(Y);
    else
      Arena->reset(Y);
    if (!M.consistent(*Arena))
      return false;
  }
  return true;
}

namespace {

/// Serialise with explicit thread and location renamings applied.
std::vector<uint8_t> encodeWith(const Execution &X,
                                const std::vector<unsigned> &ThreadPerm,
                                const std::vector<unsigned> &LocPerm) {
  // New event order: threads in permuted order, po order within.
  unsigned N = X.size();
  std::vector<EventId> NewOrder;
  for (unsigned NT = 0; NT < ThreadPerm.size(); ++NT) {
    unsigned OldT = ThreadPerm[NT];
    std::vector<EventId> Es;
    for (unsigned E = 0; E < N; ++E)
      if (X.event(E).Thread == OldT)
        Es.push_back(E);
    std::sort(Es.begin(), Es.end(), [&X](EventId A, EventId B) {
      return X.Po.contains(A, B);
    });
    NewOrder.insert(NewOrder.end(), Es.begin(), Es.end());
  }
  std::vector<int> NewIdOf(N, -1);
  for (unsigned I = 0; I < NewOrder.size(); ++I)
    NewIdOf[NewOrder[I]] = static_cast<int>(I);

  std::vector<uint8_t> Enc;
  Enc.push_back(static_cast<uint8_t>(N));
  // Transaction classes renumbered by first occurrence in the new order.
  std::vector<int> TxnMap(kMaxTxns, -1), CrMap(kMaxEvents, -1);
  int NextTxn = 0, NextCr = 0;
  for (EventId Old : NewOrder) {
    const Event &Ev = X.event(Old);
    Enc.push_back(static_cast<uint8_t>(Ev.Kind));
    Enc.push_back(static_cast<uint8_t>(
        Ev.Loc < 0 ? 255 : LocPerm[static_cast<unsigned>(Ev.Loc)]));
    Enc.push_back(static_cast<uint8_t>(Ev.Order));
    Enc.push_back(static_cast<uint8_t>(Ev.Fence));
    int T = X.Txn[Old];
    if (T != kNoClass && TxnMap[T] == -1)
      TxnMap[T] = NextTxn++;
    Enc.push_back(static_cast<uint8_t>(T == kNoClass ? 255 : TxnMap[T]));
    Enc.push_back(static_cast<uint8_t>(
        T != kNoClass && ((X.AtomicTxns >> T) & 1) ? 1 : 0));
    int C = X.Cr[Old];
    if (C != kNoClass && CrMap[C] == -1)
      CrMap[C] = NextCr++;
    Enc.push_back(static_cast<uint8_t>(C == kNoClass ? 255 : CrMap[C]));
  }
  // Thread boundaries.
  for (EventId Old : NewOrder)
    Enc.push_back(static_cast<uint8_t>(X.event(Old).Thread));

  for (const Relation *Rel :
       {&X.Po, &X.Rf, &X.Co, &X.Addr, &X.Data, &X.Ctrl, &X.Rmw})
    for (unsigned NewA = 0; NewA < N; ++NewA) {
      uint64_t Row = 0;
      EventId OldA = NewOrder[NewA];
      for (EventId OldB : Rel->successors(OldA))
        Row |= uint64_t(1) << NewIdOf[OldB];
      for (unsigned Byte = 0; Byte < 8; ++Byte)
        Enc.push_back(static_cast<uint8_t>(Row >> (8 * Byte)));
    }
  return Enc;
}

} // namespace

std::vector<uint8_t> tmw::canonicalEncoding(const Execution &X) {
  unsigned NumThreads = X.numThreads();
  unsigned NumLocs = X.numLocations();

  // Candidate thread permutations: only permutations preserving
  // non-increasing size order can produce the canonical skeleton.
  std::vector<unsigned> ThreadIds(NumThreads);
  std::iota(ThreadIds.begin(), ThreadIds.end(), 0);
  std::vector<unsigned> Sizes(NumThreads, 0);
  for (unsigned E = 0; E < X.size(); ++E)
    ++Sizes[X.event(E).Thread];
  std::sort(ThreadIds.begin(), ThreadIds.end(),
            [&](unsigned A, unsigned B) {
              if (Sizes[A] != Sizes[B])
                return Sizes[A] > Sizes[B];
              return A < B;
            });

  std::vector<uint8_t> Best;
  std::vector<unsigned> ThreadPerm = ThreadIds;
  // Permute within equal-size groups only.
  std::sort(ThreadPerm.begin(), ThreadPerm.end());
  do {
    bool SizeOrdered = true;
    for (unsigned I = 1; I < ThreadPerm.size(); ++I)
      if (Sizes[ThreadPerm[I - 1]] < Sizes[ThreadPerm[I]])
        SizeOrdered = false;
    if (!SizeOrdered)
      continue;
    std::vector<unsigned> LocPerm(NumLocs);
    std::iota(LocPerm.begin(), LocPerm.end(), 0);
    std::vector<unsigned> Inverse(NumLocs);
    do {
      for (unsigned I = 0; I < NumLocs; ++I)
        Inverse[LocPerm[I]] = I;
      std::vector<uint8_t> Enc = encodeWith(X, ThreadPerm, Inverse);
      if (Best.empty() || Enc < Best)
        Best = Enc;
    } while (std::next_permutation(LocPerm.begin(), LocPerm.end()));
  } while (std::next_permutation(ThreadPerm.begin(), ThreadPerm.end()));

  return Best;
}

std::vector<uint8_t> tmw::concreteEncoding(const Execution &X) {
  std::vector<unsigned> ThreadPerm(X.numThreads());
  std::iota(ThreadPerm.begin(), ThreadPerm.end(), 0);
  std::vector<unsigned> LocPerm(X.numLocations());
  std::iota(LocPerm.begin(), LocPerm.end(), 0);
  return encodeWith(X, ThreadPerm, LocPerm);
}

uint64_t tmw::canonicalHash(const Execution &X) {
  std::vector<uint8_t> Enc = canonicalEncoding(X);
  uint64_t H = 0xcbf29ce484222325ull;
  for (uint8_t B : Enc) {
    H ^= B;
    H *= 0x100000001b3ull;
  }
  return H;
}
