//===- Execution.h - Candidate execution graphs -----------------*- C++ -*-==//
///
/// \file
/// Executions (§2.1) extended with transactions (§3.1) and lock-elision
/// method calls (§8.3). An execution is a graph over events with the basic
/// relations po, rf, co, addr/data/ctrl, and rmw; transactions are a
/// per-event class id inducing the `stxn` partial equivalence relation, and
/// critical regions similarly induce `scr`.
///
/// The derived relations of §2.1 (fr, com, internal/external restrictions,
/// fence relations, tfence) are provided as methods. These re-derive on
/// every call; the consistency-check hot path goes through
/// `ExecutionAnalysis` (ExecutionAnalysis.h), which memoizes each derived
/// term once per immutable execution — keep the two in sync (the analysis
/// cross-check test enforces agreement).
///
//===----------------------------------------------------------------------===//

#ifndef TMW_EXECUTION_EXECUTION_H
#define TMW_EXECUTION_EXECUTION_H

#include "execution/Event.h"
#include "relation/Relation.h"

#include <array>
#include <string>

namespace tmw {

/// Marker for events outside any transaction / critical region.
inline constexpr int kNoClass = -1;

/// Cap on transaction classes per execution (fits an atomicity bitmask).
inline constexpr unsigned kMaxTxns = 32;

/// A candidate execution graph.
///
/// Fields are public so that builders and the exhaustive enumerator can fill
/// them directly; call `checkWellFormed()` to validate the result against
/// the well-formedness conditions of §2.1/§3.1.
class Execution {
public:
  Execution() { clear(0); }
  explicit Execution(unsigned NumEvents) { clear(NumEvents); }

  /// Reset to \p NumEvents default-constructed events and empty relations.
  void clear(unsigned NumEvents);

  unsigned size() const { return Num; }
  EventSet universe() const { return EventSet::universe(Num); }

  const Event &event(EventId E) const {
    assert(E < Num);
    return Events[E];
  }
  Event &event(EventId E) {
    assert(E < Num);
    return Events[E];
  }

  /// Number of threads (1 + max thread index).
  unsigned numThreads() const;
  /// Number of locations (1 + max location index), 0 if none accessed.
  unsigned numLocations() const;
  /// Number of transaction classes (1 + max class id).
  unsigned numTxns() const;
  /// Number of critical regions (1 + max region id).
  unsigned numCrs() const;

  //===--------------------------------------------------------------------===
  // Basic relations (stored).
  //===--------------------------------------------------------------------===

  /// Program order: strict total order per thread.
  Relation Po;
  /// Reads-from: writes to reads of the same location.
  Relation Rf;
  /// Coherence: strict total order over the writes to each location.
  Relation Co;
  /// Address dependencies (read to po-later access).
  Relation Addr;
  /// Data dependencies (read to po-later write).
  Relation Data;
  /// Control dependencies (read to po-later events; forward-closed).
  Relation Ctrl;
  /// Read-modify-write pairing (read to its paired write).
  Relation Rmw;

  /// Transaction class per event, `kNoClass` when not transactional.
  std::array<int, kMaxEvents> Txn;
  /// Bitmask of transaction classes that are C++ `atomic{}` transactions.
  uint32_t AtomicTxns = 0;
  /// Critical-region class per event, `kNoClass` when outside any CR.
  std::array<int, kMaxEvents> Cr;

  //===--------------------------------------------------------------------===
  // Event sets.
  //===--------------------------------------------------------------------===

  EventSet reads() const;
  EventSet writes() const;
  EventSet fences() const;
  /// Reads and writes.
  EventSet accesses() const;
  /// Fences of flavour \p K.
  EventSet fences(FenceKind K) const;
  /// C++ atomic events (Ato in Fig. 9).
  EventSet atomics() const;
  /// Events with acquire semantics (reads/fences).
  EventSet acquires() const;
  /// Events with release semantics (writes/fences).
  EventSet releases() const;
  /// Events with SC consistency mode.
  EventSet seqCst() const;
  /// Events of kind \p K.
  EventSet ofKind(EventKind K) const;
  /// Events inside some successful transaction.
  EventSet transactional() const;
  /// Events inside some C++ atomic transaction.
  EventSet atomicTransactional() const;
  /// Events accessing location \p L.
  EventSet atLocation(LocId L) const;
  /// Events of thread \p T.
  EventSet ofThread(unsigned T) const;

  //===--------------------------------------------------------------------===
  // Derived relations (§2.1, §3.1, §3.3).
  //===--------------------------------------------------------------------===

  /// Same-location relation over memory accesses (includes identity pairs).
  Relation sloc() const;
  /// Same-thread relation, (po ∪ po^-1)^* — includes identity pairs.
  Relation sameThread() const;
  /// po restricted to same-location pairs.
  Relation poLoc() const;
  /// Immediate program order (po minus po;po).
  Relation poImm() const;
  /// From-read: fr = ([R] ; sloc ; [W]) \ (rf^-1 ; (co^-1)^*).
  Relation fr() const;
  /// Communication: com = rf ∪ co ∪ fr.
  Relation com() const;
  /// Extended communication (§7.2): ecom = com ∪ (co ; rf).
  Relation ecom() const;

  /// Inter-thread restriction r^e = r \ sameThread.
  Relation external(const Relation &R) const;
  /// Intra-thread restriction r^i = r ∩ sameThread.
  Relation internal(const Relation &R) const;

  Relation rfe() const { return external(Rf); }
  Relation rfi() const { return internal(Rf); }
  Relation coe() const { return external(Co); }
  Relation coi() const { return internal(Co); }
  Relation fre() const { return external(fr()); }
  Relation fri() const { return internal(fr()); }

  /// po ; [F_K] ; po — events separated by a fence of flavour \p K.
  Relation fenceRel(FenceKind K) const;

  /// Transaction equivalence (symmetric, transitive, reflexive on events in
  /// successful transactions).
  Relation stxn() const;
  /// `stxn` restricted to C++ atomic transactions (stxnat, §7.2).
  Relation stxnAtomic() const;
  /// Implicit transaction fences: po ∩ ((¬stxn ; stxn) ∪ (stxn ; ¬stxn)).
  Relation tfence() const;

  /// Critical-region equivalence (§8.3), reflexive on events in CRs.
  Relation scr() const;
  /// `scr` restricted to CRs that will be transactionalised.
  Relation scrt() const;
  /// True when CR \p C is opened by a TxLock (an elided region).
  bool crTransactional(int C) const;

  //===--------------------------------------------------------------------===
  // Well-formedness and utilities.
  //===--------------------------------------------------------------------===

  /// Returns nullptr when well-formed, otherwise a static description of the
  /// first violated condition.
  const char *checkWellFormed() const;

  /// Multi-line dump ("a: W x (T0) [txn 0]" plus relation edge lists).
  std::string dump() const;

  /// Structural fingerprint used to deduplicate executions that are equal
  /// up to nothing (exact equality of all fields).
  uint64_t hash() const;
  bool operator==(const Execution &O) const;

private:
  unsigned Num = 0;
  std::array<Event, kMaxEvents> Events;
};

} // namespace tmw

#endif // TMW_EXECUTION_EXECUTION_H
