//===- ablation_axioms.cpp - Per-axiom ablation study ---------------------------==//
///
/// The design-choice ablations called out in DESIGN.md, generated from the
/// models themselves: for *every* named axiom of *every* registered model
/// (`MemoryModel::axioms()` — nothing is hardcoded here), synthesise the
/// model's Forbid suite, drop the axiom via a registry spec
/// ("power/-TxnOrder", ...), and report how many Forbid tests become
/// allowed — i.e. how much of the conformance suite each axiom carries —
/// plus the consistency-check throughput of each ablated configuration.
/// Includes the §9 comparison (Dongol-style atomicity-only models) and the
/// §6.2 buggy-RTL configuration as ordinary rows of the sweep.
///
/// Ablation is the canonical many-models-one-execution workload, so this
/// bench also measures the consistency-check hot path three ways —
/// re-derived per access (the historical uncached behaviour), derived
/// relations memoized in a shared `ExecutionAnalysis`, and the full
/// config set routed through one compiled cross-spec plan
/// (models/EvalPlan.h; resolution and compilation hoisted out of the
/// timed region) — and emits everything to `BENCH_ablation_axioms.json`.
///
/// A `--jobs` sweep of the work-stealing synthesis (wall seconds per job
/// count) rides along in the JSON, tracking parallel scaling per commit.
///
/// Knobs: `--jobs N` shards the Forbid synthesis across N threads;
/// `--smoke` shrinks budgets for CI (a seconds-scale run that still
/// exercises every model and axiom); `TMW_BENCH_BUDGET_SECONDS`,
/// `TMW_BENCH_MAX_EVENTS` as everywhere.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "models/EvalPlan.h"
#include "models/ModelRegistry.h"
#include "synth/Conformance.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

using namespace tmw;

namespace {

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

/// Measure checks/sec of \p Models over \p Corpus, with one shared
/// memoized analysis per execution (Cached) or per-access recomputation
/// (the uncached seed behaviour).
double checksPerSec(const std::vector<Execution> &Corpus,
                    const std::vector<const MemoryModel *> &Models,
                    bool Cached, double MinSeconds) {
  uint64_t Checks = 0;
  volatile unsigned Guard = 0;
  auto Start = std::chrono::steady_clock::now();
  do {
    for (const Execution &X : Corpus) {
      if (Cached) {
        ExecutionAnalysis A(X);
        for (const MemoryModel *M : Models) {
          Guard = Guard + M->check(A).Consistent;
          ++Checks;
        }
      } else {
        for (const MemoryModel *M : Models) {
          ExecutionAnalysis A(X, AnalysisCaching::Recompute);
          Guard = Guard + M->check(A).Consistent;
          ++Checks;
        }
      }
    }
  } while (secondsSince(Start) < MinSeconds);
  return static_cast<double>(Checks) / secondsSince(Start);
}

/// The same workload through a compiled cross-spec plan
/// (models/EvalPlan.h): shared obligations evaluated once per execution,
/// subsumed verdicts short-circuited. Spec resolution and plan
/// compilation both happen once, before the clock starts — only the
/// per-execution evaluation is timed, mirroring `checksPerSec`.
double plannedChecksPerSec(const std::vector<Execution> &Corpus,
                           const std::vector<const MemoryModel *> &Models,
                           double MinSeconds) {
  EvalPlan Plan = EvalPlan::compile(Models);
  EvalPlan::Scratch S = Plan.makeScratch();
  uint64_t Checks = 0;
  volatile unsigned Guard = 0;
  auto Start = std::chrono::steady_clock::now();
  do {
    for (const Execution &X : Corpus) {
      ExecutionAnalysis A(X);
      Plan.evaluate(A, S);
      for (size_t M = 0; M < Models.size(); ++M)
        Guard = Guard + S.consistent(M);
      Checks += Models.size();
    }
  } while (secondsSince(Start) < MinSeconds);
  return static_cast<double>(Checks) / secondsSince(Start);
}

/// A bounded corpus of transaction placements over enumerated bases.
std::vector<Execution> placementCorpus(Arch A, unsigned MaxE,
                                       unsigned Cap) {
  std::vector<Execution> Corpus;
  Vocabulary V = Vocabulary::forArch(A);
  ExecutionEnumerator Enum(V, MaxE);
  Enum.forEachBase([&](Execution &Base) {
    return Enum.forEachTxnPlacement(Base, [&](Execution &X) {
      Corpus.push_back(X);
      return Corpus.size() < Cap;
    }) && Corpus.size() < Cap;
  });
  return Corpus;
}

} // namespace

int main(int argc, char **argv) {
  bench::header("Ablations: what each axiom of each model carries",
                "DESIGN.md ablation index; §5-§6, §9, §6.2");
  bool Smoke = false;
  for (int I = 1; I < argc; ++I)
    if (std::strcmp(argv[I], "--smoke") == 0)
      Smoke = true;
  double Budget = bench::budgetSeconds(Smoke ? 2.0 : 60.0);
  unsigned MaxE = bench::maxEvents(Smoke ? 3 : 4);
  unsigned Jobs = bench::jobs(argc, argv);
  double MeasureSeconds = Smoke ? 0.02 : 0.25;

  std::string PerAxiomJson;

  //===------------------------------------------------------------------===
  // Registry-driven sweep: every single-axiom ablation of every model,
  // generated from axioms().
  //===------------------------------------------------------------------===
  for (Arch A : ModelRegistry::allArchs()) {
    std::unique_ptr<MemoryModel> Tm = ModelRegistry::make(A);
    AxiomList Axioms = Tm->axioms();
    unsigned NumAxioms = static_cast<unsigned>(Axioms.size());
    std::string ArchSpec = ModelRegistry::archSpecName(A);

    // The baseline (all TM axioms off) prunes the Forbid search; models
    // without TM axioms (SC) have no Forbid suite to synthesise.
    std::unique_ptr<MemoryModel> Baseline =
        ModelRegistry::parse(ArchSpec + "/+baseline");
    bool HasTm =
        baselineMask(Axioms).normalized(NumAxioms) !=
        AxiomMask::all().normalized(NumAxioms);

    // Power/ARMv8/C++ checks are an order of magnitude heavier; cap their
    // exhaustive sweep one event earlier, like the paper's preliminary
    // mode.
    unsigned ArchMaxE =
        (A == Arch::X86 || A == Arch::TSC) ? MaxE : std::min(MaxE, 3u);

    std::vector<Execution> Forbid;
    if (HasTm)
      for (unsigned N = 2; N <= ArchMaxE; ++N) {
        ForbidSuite S =
            synthesizeForbid(*Tm, *Baseline, Vocabulary::forArch(A), N,
                             Budget, Jobs);
        Forbid.insert(Forbid.end(), S.Tests.begin(), S.Tests.end());
      }

    std::vector<Execution> Corpus =
        placementCorpus(A, std::min(ArchMaxE, 3u), Smoke ? 128 : 256);

    std::printf("\n%s: %u axioms, %zu Forbid tests (|E| <= %u, %u job%s)\n",
                Tm->name(), NumAxioms, Forbid.size(), ArchMaxE, Jobs,
                Jobs == 1 ? "" : "s");
    std::printf("  %-28s %16s %14s\n", "dropped axiom",
                "tests now allowed", "checks/sec");
    for (const Axiom &Ax : Axioms) {
      std::string Spec = ArchSpec + "/-" + std::string(Ax.Name);
      std::unique_ptr<MemoryModel> Ablated = ModelRegistry::parse(Spec);
      unsigned NowAllowed = 0;
      for (const Execution &X : Forbid)
        NowAllowed += Ablated->consistent(X);
      double Cps = checksPerSec(Corpus, {Ablated.get()}, /*Cached=*/true,
                                MeasureSeconds);
      std::printf("  %-28s %10u / %-5zu %12.0f\n", Spec.c_str(),
                  NowAllowed, Forbid.size(), Cps);

      char Entry[256];
      std::snprintf(Entry, sizeof(Entry),
                    "%s{\"spec\": \"%s\", \"forbid_tests\": %zu, "
                    "\"now_allowed\": %u, \"checks_per_sec\": %.0f}",
                    PerAxiomJson.empty() ? "" : ", ", Spec.c_str(),
                    Forbid.size(), NowAllowed, Cps);
      PerAxiomJson += Entry;
    }
  }

  std::printf("\nReading: each row drops one axiom from its model and "
              "re-checks the model's\nForbid suite; 'tests now allowed' > "
              "0 means the axiom is load-bearing (§6.2's\nRTL bug is the "
              "armv8/-TxnOrder row; §9's atomicity-only comparison is the "
              "thb/\ntprop rows on Power).\n");

  //===------------------------------------------------------------------===
  // Hot-path throughput: memoized ExecutionAnalysis vs uncached per-access
  // recomputation over the ablation workload (every x86 configuration
  // evaluated on every corpus execution).
  //===------------------------------------------------------------------===
  std::printf("\nConsistency-check throughput (x86 vocabulary, all "
              "ablation configs):\n");

  std::vector<Execution> Corpus =
      placementCorpus(Arch::X86, std::min(MaxE, 4u), 512);

  std::vector<std::unique_ptr<MemoryModel>> Configs;
  for (const char *Spec : {"x86", "x86/-tfence", "x86/-StrongIsol",
                           "x86/-TxnOrder", "x86/+baseline"})
    Configs.push_back(ModelRegistry::parse(Spec));
  std::vector<const MemoryModel *> Models;
  for (const auto &M : Configs)
    Models.push_back(M.get());

  double MinSeconds = Smoke ? 0.2 : 1.0;
  double Uncached =
      checksPerSec(Corpus, Models, /*Cached=*/false, MinSeconds);
  double Cached = checksPerSec(Corpus, Models, /*Cached=*/true, MinSeconds);
  double Planned = plannedChecksPerSec(Corpus, Models, MinSeconds);
  double Speedup = Uncached > 0 ? Cached / Uncached : 0.0;
  double PlanSpeedup = Cached > 0 ? Planned / Cached : 0.0;
  std::printf("  uncached (per-access recompute): %12.0f checks/sec\n",
              Uncached);
  std::printf("  cached (shared ExecutionAnalysis): %10.0f checks/sec\n",
              Cached);
  std::printf("  planned (cross-spec eval plan):  %12.0f checks/sec\n",
              Planned);
  std::printf("  memoization speedup: %.2fx; plan on top: %.2fx\n", Speedup,
              PlanSpeedup);

  //===------------------------------------------------------------------===
  // Jobs sweep of the work-stealing x86 Forbid synthesis (within budget
  // the test set is deterministic across the sweep; only wall time moves).
  //===------------------------------------------------------------------===
  std::printf("\nSynthesis jobs sweep (x86, |E| = %u, work-stealing):\n",
              MaxE);
  std::unique_ptr<MemoryModel> SweepTm = ModelRegistry::parse("x86");
  std::unique_ptr<MemoryModel> SweepBase =
      ModelRegistry::parse("x86/+baseline");
  std::string SweepJson = bench::synthesisJobsSweepJson(
      *SweepTm, *SweepBase, Vocabulary::forArch(Arch::X86), MaxE, Budget);

  char Head[512];
  std::snprintf(Head, sizeof(Head),
                "{\"bench\": \"ablation_axioms\", \"jobs\": %u, "
                "\"smoke\": %s, \"corpus_executions\": %zu, "
                "\"model_configs\": %zu, "
                "\"uncached_checks_per_sec\": %.0f, "
                "\"cached_checks_per_sec\": %.0f, "
                "\"planned_checks_per_sec\": %.0f, \"speedup\": %.3f, "
                "\"plan_speedup\": %.3f, \"jobs_sweep\": [",
                Jobs, Smoke ? "true" : "false", Corpus.size(),
                Models.size(), Uncached, Cached, Planned, Speedup,
                PlanSpeedup);
  bench::writeBenchJson("ablation_axioms", std::string(Head) + SweepJson +
                                               "], \"per_axiom\": [" +
                                               PerAxiomJson + "]}");
  return 0;
}
