//===- x86_test.cpp - x86-TSO with transactions (Fig. 5) ----------------------==//

#include "TestGraphs.h"
#include "models/X86Model.h"

#include <gtest/gtest.h>

using namespace tmw;

namespace {

TEST(X86Test, AllowsStoreBuffering) {
  X86Model M;
  EXPECT_TRUE(M.consistent(shapes::storeBuffering()));
}

TEST(X86Test, MfenceForbidsStoreBuffering) {
  ExecutionBuilder B;
  B.write(0, 0, MemOrder::NonAtomic, 1);
  B.fence(0, FenceKind::MFence);
  B.read(0, 1);
  B.write(1, 1, MemOrder::NonAtomic, 1);
  B.fence(1, FenceKind::MFence);
  B.read(1, 0);
  X86Model M;
  ConsistencyResult R = M.check(B.build());
  EXPECT_FALSE(R.Consistent);
  EXPECT_EQ(R.FailedAxiom, "Order");
}

TEST(X86Test, LockedRmwForbidsStoreBuffering) {
  // Implementing the first store of each thread as a locked RMW restores
  // SC for the SB shape (implied fences, Fig. 5).
  ExecutionBuilder B;
  EventId R0 = B.read(0, 0);
  EventId W0 = B.write(0, 0, MemOrder::NonAtomic, 1);
  B.rmw(R0, W0);
  B.read(0, 1);
  EventId R1 = B.read(1, 1);
  EventId W1 = B.write(1, 1, MemOrder::NonAtomic, 1);
  B.rmw(R1, W1);
  B.read(1, 0);
  X86Model M;
  EXPECT_FALSE(M.consistent(B.build()));
}

TEST(X86Test, ForbidsMessagePassingStaleRead) {
  X86Model M;
  EXPECT_FALSE(M.consistent(shapes::messagePassing()));
}

TEST(X86Test, ForbidsLoadBuffering) {
  X86Model M;
  EXPECT_FALSE(M.consistent(shapes::loadBuffering(false)));
}

TEST(X86Test, ForbidsIriw) {
  X86Model M;
  EXPECT_FALSE(M.consistent(shapes::iriw()));
}

TEST(X86Test, ForbidsCoherenceViolations) {
  ExecutionBuilder B;
  EventId W1 = B.write(0, 0, MemOrder::NonAtomic, 1);
  EventId W2 = B.write(0, 0, MemOrder::NonAtomic, 2);
  EventId R = B.read(1, 0);
  B.rf(W1, R);
  B.co(W2, W1); // co contradicts po
  X86Model M;
  ConsistencyResult Res = M.check(B.buildUnchecked());
  EXPECT_FALSE(Res.Consistent);
  EXPECT_EQ(Res.FailedAxiom, "Coherence");
}

TEST(X86Test, RmwIsolation) {
  // An external write must not land between an RMW's read and write.
  ExecutionBuilder B;
  EventId R = B.read(0, 0); // reads initial value
  EventId W = B.write(0, 0, MemOrder::NonAtomic, 2);
  B.rmw(R, W);
  EventId WExt = B.write(1, 0, MemOrder::NonAtomic, 1);
  B.co(WExt, W);
  X86Model M;
  ConsistencyResult Res = M.check(B.build());
  EXPECT_FALSE(Res.Consistent);
  EXPECT_EQ(Res.FailedAxiom, "RMWIsol");
}

//===----------------------------------------------------------------------===
// TM additions (highlighted parts of Fig. 5).
//===----------------------------------------------------------------------===

TEST(X86TmTest, TfenceForbidsStoreBufferingAroundTransactions) {
  // SB where each thread's write is inside a transaction: the implicit
  // fence at the transaction exit forbids the stale reads.
  ExecutionBuilder B;
  EventId W0 = B.write(0, 0, MemOrder::NonAtomic, 1);
  B.read(0, 1);
  EventId W1 = B.write(1, 1, MemOrder::NonAtomic, 1);
  B.read(1, 0);
  B.txn({W0});
  B.txn({W1});
  Execution X = B.build();

  X86Model Tm;
  EXPECT_FALSE(Tm.consistent(X));
  // The non-transactional baseline ignores stxn and allows it.
  X86Model Baseline{X86Model::Config::baseline()};
  EXPECT_TRUE(Baseline.consistent(X));
}

TEST(X86TmTest, StrongIsolationEnforced) {
  // Fig. 3(d)-style containment is visible to the TM model only.
  ExecutionBuilder B;
  EventId W1 = B.write(0, 0, MemOrder::NonAtomic, 1);
  EventId W2 = B.write(0, 0, MemOrder::NonAtomic, 2);
  EventId R = B.read(1, 0);
  B.co(W1, W2);
  B.rf(W1, R);
  B.txn({W1, W2});
  Execution X = B.build();

  X86Model Tm;
  ConsistencyResult Res = Tm.check(X);
  EXPECT_FALSE(Res.Consistent);
  X86Model Baseline{X86Model::Config::baseline()};
  EXPECT_TRUE(Baseline.consistent(X));
}

TEST(X86TmTest, TxnOrderForbidsUnserialisableTransactions) {
  // Two transactions each reading the other's pre-state: no serialisation
  // order exists.
  ExecutionBuilder B;
  EventId Rx = B.read(0, 0);
  EventId Wy = B.write(0, 1, MemOrder::NonAtomic, 1);
  EventId Ry = B.read(1, 1);
  EventId Wx = B.write(1, 0, MemOrder::NonAtomic, 1);
  B.txn({Rx, Wy});
  B.txn({Ry, Wx});
  Execution X = B.build();

  X86Model Tm;
  EXPECT_FALSE(Tm.consistent(X));
  X86Model Baseline{X86Model::Config::baseline()};
  EXPECT_TRUE(Baseline.consistent(X));
}

TEST(X86TmTest, TransactionFreeExecutionsUnchanged) {
  // §8: the TM model gives the same semantics to transaction-free
  // executions as the original model.
  X86Model Tm;
  X86Model Baseline{X86Model::Config::baseline()};
  for (const Execution &X :
       {shapes::storeBuffering(), shapes::messagePassing(),
        shapes::loadBuffering(false), shapes::iriw(),
        shapes::messagePassingDep(false)}) {
    EXPECT_EQ(Tm.consistent(X), Baseline.consistent(X));
  }
}

TEST(X86TmTest, AblationFlagsAreIndependent) {
  // The SB+txn shape is forbidden purely by Tfence.
  ExecutionBuilder B;
  EventId W0 = B.write(0, 0, MemOrder::NonAtomic, 1);
  B.read(0, 1);
  EventId W1 = B.write(1, 1, MemOrder::NonAtomic, 1);
  B.read(1, 0);
  B.txn({W0});
  B.txn({W1});
  Execution X = B.build();

  X86Model::Config NoTfence;
  NoTfence.Tfence = false;
  EXPECT_TRUE(X86Model(NoTfence).consistent(X));

  X86Model::Config OnlyTfence = X86Model::Config::baseline();
  OnlyTfence.Tfence = true;
  EXPECT_FALSE(X86Model(OnlyTfence).consistent(X));
}

TEST(X86TmTest, CommittedTransactionActsAsSingleEvent) {
  // MP where the writer's two stores form one transaction: the reader can
  // not observe y=1 while x is stale, because the transaction's stores
  // become visible together.
  Execution X = shapes::messagePassing();
  X.Txn[0] = 0;
  X.Txn[1] = 0;
  ASSERT_EQ(X.checkWellFormed(), nullptr);
  X86Model Tm;
  EXPECT_FALSE(Tm.consistent(X));
}

} // namespace
