//===- Conformance.h - Conformance-test synthesis ---------------*- C++ -*-==//
///
/// \file
/// Synthesis of conformance suites (§4.2, Table 1):
///
///  * the Forbid suite — executions *minimally inconsistent* under a
///    transactional model while consistent under its non-transactional
///    baseline (i.e. exactly the tests that distinguish the TM extension);
///  * the Allow suite — the one-⊏-step relaxations of the Forbid tests
///    (maximally consistent executions), which include "just not enough"
///    synchronisation to be forbidden.
///
/// Search is explicit and exhaustive up to the event bound; a wall-clock
/// budget may stop it early, in which case `Complete` is false — mirroring
/// the timeout column of the paper's Table 1. Discovery timestamps are
/// recorded to reproduce the Fig. 7 distribution.
///
/// The search is parallel (`Jobs > 1`) and, by default, *work-stealing*:
/// the canonical-DFS space is decomposed into (skeleton, event-labelling)
/// prefix tasks (`enumerate/WorkQueue.h`) that workers split adaptively
/// until they fall under a target cost and steal from each other when
/// idle, so load balances even though subtree sizes are wildly unequal.
/// Each worker runs with a private `ExecutionAnalysis` arena (reset per
/// base, transaction-state-invalidated per placement) and a private result
/// buffer; models are stateless and shared by const reference. The
/// previous static round-robin sharding over the first skeleton decision
/// is kept as `ShardStrategy::StaticRoundRobin`, the load-balance baseline
/// of `bench/shard_balance`.
///
/// The merged output is *deterministic*: the prefix tasks partition the
/// base space exactly, duplicates are collapsed by canonical hash keeping
/// the representative with the least `concreteEncoding` (and the earliest
/// discovery time), and `Tests` is sorted by canonical hash — so whenever
/// the search runs to completion (`Complete == true`), the suite is
/// byte-for-byte identical for every `Jobs` value and both strategies. A
/// budget-truncated run visits a scheduling-dependent subset and forfeits
/// the guarantee. `tests/sharding_differential_test.cpp` pins both the
/// partition and the determinism.
///
//===----------------------------------------------------------------------===//

#ifndef TMW_SYNTH_CONFORMANCE_H
#define TMW_SYNTH_CONFORMANCE_H

#include "enumerate/Relaxation.h"
#include "enumerate/WorkQueue.h"

#include <vector>

namespace tmw {

/// How the search space is dealt to parallel workers.
enum class ShardStrategy {
  /// Prefix tasks split adaptively and stolen by idle workers (default).
  WorkStealing,
  /// The first skeleton decision dealt round-robin to fixed shards — the
  /// historical scheme, kept as the load-balance baseline.
  StaticRoundRobin,
};

/// The Forbid suite for one event count.
struct ForbidSuite {
  unsigned NumEvents = 0;
  /// False when the time budget stopped the search early.
  bool Complete = true;
  double SynthesisSeconds = 0;
  /// Canonical representatives of the minimally-forbidden executions,
  /// sorted by canonical hash; each class is represented by its least
  /// `concreteEncoding` member, so the vector is byte-for-byte identical
  /// for every `Jobs` value and strategy (given a sufficient budget).
  std::vector<Execution> Tests;
  /// Earliest wall-clock second (from search start) each test was found,
  /// aligned with `Tests` (timing data: not deterministic).
  std::vector<double> FoundAtSeconds;
  /// Number of base executions visited and consistency checks performed.
  uint64_t BasesVisited = 0, PlacementsVisited = 0;
  /// Per-worker load balance of this run.
  std::vector<WorkerLoad> Workers;
};

/// Synthesise the Forbid suite: executions with \p NumEvents events that
/// are minimally inconsistent under \p TmModel and consistent under
/// \p Baseline. \p Jobs > 1 runs that many worker threads over the
/// strategy's decomposition of the skeleton space; when the search
/// completes within the budget, the deduplicated, hash-sorted result is
/// identical — including representatives and order — for every Jobs value
/// and strategy.
ForbidSuite synthesizeForbid(const MemoryModel &TmModel,
                             const MemoryModel &Baseline,
                             const Vocabulary &V, unsigned NumEvents,
                             double BudgetSeconds = 1e18, unsigned Jobs = 1,
                             ShardStrategy Strategy =
                                 ShardStrategy::WorkStealing);

/// The Allow suite: deduplicated one-step relaxations of \p Forbid
/// (all consistent under the TM model by minimality).
std::vector<Execution>
relaxationsOf(const std::vector<Execution> &Forbid, const Vocabulary &V);

/// Count the transactions of each execution (used for the §5.3 breakdown
/// "29% had one transaction, ...").
std::vector<unsigned> txnCountHistogram(const std::vector<Execution> &Tests);

} // namespace tmw

#endif // TMW_SYNTH_CONFORMANCE_H
