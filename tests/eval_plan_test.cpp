//===- eval_plan_test.cpp - Cross-spec evaluation plan tests ------------------==//
///
/// The cross-spec evaluation plan (models/EvalPlan.h) pinned three ways:
///
///  * differential — planned engine runs are verdict- and byte-identical
///    to independent per-model runs over the whole corpus × a ≥10-spec
///    matrix (ablations, wrappers, hierarchy pairs) × Jobs in {1, 4, 16},
///    and plan verdicts equal direct `MemoryModel::consistent` over every
///    enumerated execution of every architecture's vocabulary (so an
///    unsound subsumption edge or a bad term-sharing salt cannot hide:
///    any wrong short-circuit flips a verdict somewhere in the sweep);
///
///  * structural — shared terms really are shared (one obligation for
///    SC's and TSC's Order, one coherence across the hardware models),
///    and every implication edge is justified: a propositional
///    obligation subset, an ablation-lattice edge within one table
///    family, or a hierarchy edge from a maximal (SC/TSC-strength)
///    source — never a pair the hierarchy test doesn't imply (x86 =>
///    ARMv8 is pinned only over x86's vocabulary, so it must NOT be an
///    edge);
///
///  * operational — the per-candidate obligation cache and the
///    subsumption short-circuits actually fire, and the session cache
///    compiles one plan per spec set and serves the rest resident.
///
//===----------------------------------------------------------------------===//

#include "enumerate/Enumerator.h"
#include "litmus/Library.h"
#include "models/EvalPlan.h"
#include "models/ModelRegistry.h"
#include "query/QueryEngine.h"
#include "query/QueryIO.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <numeric>

using namespace tmw;

namespace {

/// ≥10 specs spanning every architecture, ablations over checked and
/// modifier axioms (salt-relevant and not), baseline wrappers, hardware
/// substitutes, and the hierarchy pairs (SC/TSC above everything).
const std::vector<std::string> kMatrix = {
    "sc",          "tsc",          "x86",
    "power",       "armv8",        "cpp",
    "x86/-tfence", "x86/+baseline", "power/-TxnOrder",
    "power/-thb",  "armv8/-StrongIsol", "cpp/+baseline",
    "power8",      "armv8-rtl"};

struct ResolvedMatrix {
  std::vector<std::unique_ptr<MemoryModel>> Owned;
  std::vector<const MemoryModel *> Raw;

  explicit ResolvedMatrix(const std::vector<std::string> &Specs = kMatrix) {
    for (const std::string &Spec : Specs) {
      std::unique_ptr<MemoryModel> M = ModelRegistry::parse(Spec);
      EXPECT_TRUE(M) << Spec;
      Raw.push_back(M.get());
      Owned.push_back(std::move(M));
    }
  }
};

size_t indexOf(const std::string &Spec) {
  auto It = std::find(kMatrix.begin(), kMatrix.end(), Spec);
  EXPECT_NE(It, kMatrix.end()) << Spec;
  return static_cast<size_t>(It - kMatrix.begin());
}

/// The spec's table family: the registry token before any "/" modifier
/// ("power/-thb" -> "power"; wrappers like "power8" are their own family).
std::string familyOf(const std::string &Spec) {
  return Spec.substr(0, Spec.find('/'));
}

std::vector<CheckRequest> corpusRequests() {
  std::vector<CheckRequest> Requests;
  for (const CorpusEntry &E : standardCorpus()) {
    CheckRequest R;
    R.Corpus = E.Name;
    R.ModelSpecs = kMatrix;
    R.Explain = true;
    R.WantOutcomes = true;
    Requests.push_back(std::move(R));
  }
  return Requests;
}

TEST(EvalPlan_, PlannedAndIndependentAreByteIdentical) {
  std::vector<CheckRequest> Requests = corpusRequests();
  std::string Reference;
  for (unsigned Jobs : {1u, 4u, 16u}) {
    std::vector<CheckResponse> Planned =
        QueryEngine({.Jobs = Jobs, .Strategy = EvalStrategy::Planned})
            .runAll(Requests);
    std::vector<CheckResponse> Independent =
        QueryEngine({.Jobs = Jobs, .Strategy = EvalStrategy::Independent})
            .runAll(Requests);
    std::string PlannedJson = responsesToJson(Planned, nullptr);
    std::string IndependentJson = responsesToJson(Independent, nullptr);
    EXPECT_EQ(PlannedJson, IndependentJson) << "Jobs=" << Jobs;
    if (Reference.empty())
      Reference = PlannedJson;
    // And identical across Jobs counts, planned or not.
    EXPECT_EQ(PlannedJson, Reference) << "Jobs=" << Jobs;
  }
}

TEST(EvalPlan_, MatchesDirectEvaluationOverEveryVocabulary) {
  // Every enumerated execution (bases and transaction placements) of
  // every architecture's vocabulary: the plan's per-spec verdicts must
  // equal direct evaluation. This is the semantic audit of both sharing
  // (salts) and subsumption (edges + guards): a wrong short-circuit
  // flips some verdict in this space — the x86 => ARMv8 edge the plan
  // must not take is falsified here by DMB-bearing ARMv8 executions.
  ResolvedMatrix M;
  EvalPlan Plan = EvalPlan::compile(M.Raw);
  EvalPlan::Scratch Scratch = Plan.makeScratch();
  std::optional<ExecutionAnalysis> Arena;
  for (Arch A : ModelRegistry::allArchs()) {
    uint64_t Seen = 0;
    ExecutionEnumerator Enum(Vocabulary::forArch(A), 3);
    auto Check = [&](const Execution &X) {
      if (!Arena)
        Arena.emplace(X);
      else
        Arena->reset(X);
      Plan.evaluate(*Arena, Scratch);
      ++Seen;
      for (size_t S = 0; S < M.Raw.size(); ++S)
        ASSERT_EQ(Scratch.consistent(S), M.Raw[S]->consistent(*Arena))
            << kMatrix[S] << " over " << archName(A) << " vocabulary\n"
            << X.dump();
    };
    Enum.forEachBase([&](Execution &Base) {
      Check(Base);
      return Enum.forEachTxnPlacement(Base, [&](Execution &X) {
        Check(X);
        return true;
      });
    });
    EXPECT_GT(Seen, 0u) << archName(A);
  }
  // The cache and the short-circuits actually fired during the sweep.
  const EvalPlan::Counters &C = Scratch.counters();
  EXPECT_GT(C.Candidates, 0u);
  EXPECT_GT(C.TermHits, 0u);
  EXPECT_GT(C.SpecShortCircuits, 0u);
  EXPECT_EQ(C.SpecEvals + C.SpecShortCircuits,
            C.Candidates * Plan.numSpecs());
}

TEST(EvalPlan_, SharedTermsCollapseToOneObligation) {
  ResolvedMatrix M;
  EvalPlan Plan = EvalPlan::compile(M.Raw);
  ASSERT_EQ(Plan.numSpecs(), kMatrix.size());

  // Hash-consing wins: the pool is strictly smaller than the sum of the
  // per-spec obligation lists.
  size_t Total = 0;
  for (size_t S = 0; S < Plan.numSpecs(); ++S)
    Total += Plan.specObligations(S).size();
  EXPECT_LT(Plan.numObligations(), Total);

  // SC's Order and TSC's Order reference one term function with salt 0:
  // one obligation.
  EXPECT_EQ(Plan.specObligations(indexOf("sc"))[0],
            Plan.specObligations(indexOf("tsc"))[0]);

  // Coherence is shared across x86, Power, and ARMv8 (first table entry
  // of each, salt 0).
  uint32_t Coh = Plan.specObligations(indexOf("x86"))[0];
  EXPECT_EQ(Coh, Plan.specObligations(indexOf("power"))[0]);
  EXPECT_EQ(Coh, Plan.specObligations(indexOf("armv8"))[0]);

  // A salt-relevant ablation does NOT collapse: x86's Order reads the
  // tfence bit, so "x86" and "x86/-tfence" must keep distinct hb
  // obligations (sharing them was the classic masking bug).
  auto X86 = Plan.specObligations(indexOf("x86"));
  auto X86NoTf = Plan.specObligations(indexOf("x86/-tfence"));
  std::vector<uint32_t> A(X86.begin(), X86.end()),
      B(X86NoTf.begin(), X86NoTf.end());
  EXPECT_NE(A, B);
}

TEST(EvalPlan_, EveryEdgeIsJustified) {
  // Audit of the subsumption sources: each edge must be (a) structural —
  // target obligations a subset of the source's, sound propositionally;
  // (b) intra-family — same table, ablation-lattice monotonicity; or
  // (c) hierarchy — from a maximal SC/TSC-strength source, the only
  // cross-arch bounds that hold on every vocabulary. In particular the
  // hierarchy test's x86 => ARMv8 (pinned over x86's vocabulary only)
  // must never become an edge.
  ResolvedMatrix M;
  EvalPlan Plan = EvalPlan::compile(M.Raw);
  size_t N = kMatrix.size();

  // Directly-justified pairs, recomputed independently of the plan.
  auto oblSet = [&](size_t S) {
    auto O = Plan.specObligations(S);
    std::vector<uint32_t> V(O.begin(), O.end());
    std::sort(V.begin(), V.end());
    V.erase(std::unique(V.begin(), V.end()), V.end());
    return V;
  };
  // The two obligations of the dominance rule, recovered from the pool:
  // SC's sole obligation is `acyclic(po u com)`, and the one obligation
  // power8 adds over power is the wrappers' NoLB `acyclic(po u rf)` —
  // the former implies the latter (rf ⊆ com).
  std::vector<uint32_t> ScSet = oblSet(indexOf("sc"));
  ASSERT_EQ(ScSet.size(), 1u);
  uint32_t ScHb = ScSet[0];
  std::vector<uint32_t> P8Set = oblSet(indexOf("power8")),
                        PwSet = oblSet(indexOf("power")), NoLbOnly;
  std::set_difference(P8Set.begin(), P8Set.end(), PwSet.begin(), PwSet.end(),
                      std::back_inserter(NoLbOnly));
  ASSERT_EQ(NoLbOnly.size(), 1u);
  uint32_t NoLb = NoLbOnly[0];
  auto justified = [&](size_t I, size_t J) {
    const std::string &From = kMatrix[I], &To = kMatrix[J];
    // (a) structural: obligations(To) ⊆ covered(I) — propositional plus
    // the scHb => NoLB dominance.
    std::vector<uint32_t> FromSet = oblSet(I), ToSet = oblSet(J);
    if (std::binary_search(FromSet.begin(), FromSet.end(), ScHb)) {
      FromSet.push_back(NoLb);
      std::sort(FromSet.begin(), FromSet.end());
      FromSet.erase(std::unique(FromSet.begin(), FromSet.end()),
                    FromSet.end());
    }
    if (std::includes(FromSet.begin(), FromSet.end(), ToSet.begin(),
                      ToSet.end()))
      return true;
    // (b) ablation lattice: same table family AND mask(To) ⊆ mask(From)
    // — monotone modifier bits, so sub-mask = weaker model.
    if (familyOf(From) == familyOf(To)) {
      unsigned Bits =
          static_cast<unsigned>(M.Raw[I]->axioms().size());
      uint32_t FromMask = M.Raw[I]->axiomMask().normalized(Bits).bits();
      uint32_t ToMask = M.Raw[J]->axiomMask().normalized(Bits).bits();
      if ((ToMask & ~FromMask) == 0)
        return true;
    }
    // (c) hierarchy, maximal sources only: TSC above the hardware TM
    // models (and SC, structurally above via the shared Order); SC above
    // the hardware baselines. The hierarchy test's x86 => ARMv8 is
    // vocabulary-scoped and deliberately NOT here.
    std::string FromFam = familyOf(From), ToFam = familyOf(To);
    // NoLB wrappers of the hardware TM models count as hierarchy targets
    // too: the extra axiom is dominated by the SC/TSC source's Order.
    bool HwFam = ToFam == "x86" || ToFam == "power" || ToFam == "armv8" ||
                 ToFam == "power8" || ToFam == "armv8-rtl";
    if (FromFam == "tsc" && HwFam)
      return true;
    if (FromFam == "sc" && HwFam &&
        To.find("/+baseline") != std::string::npos)
      return true;
    return false;
  };

  // The plan closes edges transitively, so close the justification
  // relation the same way before comparing.
  std::vector<std::vector<char>> Ok(N, std::vector<char>(N, 0));
  for (size_t I = 0; I < N; ++I)
    for (size_t J = 0; J < N; ++J)
      Ok[I][J] = I != J && justified(I, J);
  for (size_t K = 0; K < N; ++K)
    for (size_t I = 0; I < N; ++I)
      for (size_t J = 0; J < N; ++J)
        Ok[I][J] |= Ok[I][K] && Ok[K][J];

  for (const EvalPlan::Edge &E : Plan.edges())
    EXPECT_TRUE(Ok[E.From][E.To])
        << "unjustified edge " << kMatrix[E.From] << " => "
        << kMatrix[E.To];

  // The hierarchy edges the paper pins, present and guarded...
  EXPECT_TRUE(Plan.implies(indexOf("tsc"), indexOf("x86")));
  EXPECT_TRUE(Plan.implies(indexOf("tsc"), indexOf("power")));
  EXPECT_TRUE(Plan.implies(indexOf("tsc"), indexOf("armv8")));
  EXPECT_TRUE(Plan.implies(indexOf("tsc"), indexOf("sc")));
  EXPECT_TRUE(Plan.implies(indexOf("sc"), indexOf("x86/+baseline")));
  // ...the lattice edges within a family...
  EXPECT_TRUE(Plan.implies(indexOf("x86"), indexOf("x86/-tfence")));
  EXPECT_TRUE(Plan.implies(indexOf("power"), indexOf("power/-TxnOrder")));
  // ...the structural wrapper edge (power8 checks power's obligations
  // plus one more) and the dominance edges over the NoLB wrappers...
  EXPECT_TRUE(Plan.implies(indexOf("power8"), indexOf("power")));
  EXPECT_TRUE(Plan.implies(indexOf("tsc"), indexOf("power8")));
  EXPECT_TRUE(Plan.implies(indexOf("tsc"), indexOf("armv8-rtl")));
  // ...and the pairs that must NOT be edges: hardware-to-hardware bounds
  // (vocabulary-scoped in the hierarchy test) and everything upward.
  EXPECT_FALSE(Plan.implies(indexOf("x86"), indexOf("armv8")));
  EXPECT_FALSE(Plan.implies(indexOf("x86"), indexOf("power")));
  EXPECT_FALSE(Plan.implies(indexOf("armv8"), indexOf("x86")));
  EXPECT_FALSE(Plan.implies(indexOf("power"), indexOf("armv8")));
  EXPECT_FALSE(Plan.implies(indexOf("sc"), indexOf("tsc")));
  EXPECT_FALSE(Plan.implies(indexOf("sc"), indexOf("x86")));
  EXPECT_FALSE(Plan.implies(indexOf("cpp"), indexOf("x86")));
  EXPECT_FALSE(Plan.implies(indexOf("x86"), indexOf("cpp")));
}

TEST(EvalPlan_, GuardsKeepTscEdgesHonest) {
  // A TSC-consistent execution with an RMW-isolation violation inside a
  // transaction placement sits outside the upper-bound claim (the guard
  // obligations catch it): sweep and check the plan still answers
  // exactly what the models answer — i.e. subsumption never overrides
  // the guard. (Covered by the big differential sweep too; this pins the
  // guard mechanism on the narrowest interesting matrix.)
  ResolvedMatrix M(
      std::vector<std::string>{"tsc", "x86", "power", "armv8"});
  EvalPlan Plan = EvalPlan::compile(M.Raw);
  EvalPlan::Scratch Scratch = Plan.makeScratch();
  std::optional<ExecutionAnalysis> Arena;
  ExecutionEnumerator Enum(Vocabulary::forArch(Arch::X86), 4);
  Enum.forEachBase([&](Execution &Base) {
    return Enum.forEachTxnPlacement(Base, [&](Execution &X) {
      if (!Arena)
        Arena.emplace(X);
      else
        Arena->reset(X);
      Plan.evaluate(*Arena, Scratch);
      for (size_t S = 0; S < M.Raw.size(); ++S)
        EXPECT_EQ(Scratch.consistent(S), M.Raw[S]->consistent(*Arena))
            << X.dump();
      return !::testing::Test::HasFailure();
    });
  });
}

TEST(EvalPlan_, SessionCacheCompilesOncePerSpecSet) {
  SessionCache Cache;
  QueryEngine Engine({.Jobs = 4, .Cache = &Cache});
  std::vector<CheckRequest> Requests = corpusRequests();

  BatchTelemetry T1;
  std::vector<CheckResponse> First = Engine.runAll(Requests, &T1);
  SessionCache::Stats S1 = Cache.stats();
  EXPECT_EQ(S1.PlansCached, 1u);
  EXPECT_EQ(T1.Plan.Compiles, 1u);
  EXPECT_EQ(T1.Plan.CacheHits, Requests.size() - 1);
  EXPECT_GT(T1.Plan.TermHits, 0u);
  EXPECT_GT(T1.Plan.SpecShortCircuits, 0u);

  // Second batch: fully resident.
  BatchTelemetry T2;
  std::vector<CheckResponse> Second = Engine.runAll(Requests, &T2);
  SessionCache::Stats S2 = Cache.stats();
  EXPECT_EQ(S2.PlansCached, 1u);
  EXPECT_EQ(T2.Plan.Compiles, 0u);
  EXPECT_EQ(T2.Plan.CacheHits, Requests.size());
  EXPECT_EQ(responsesToJson(First, nullptr),
            responsesToJson(Second, nullptr));

  // A different spec set compiles its own plan.
  CheckRequest R;
  R.Corpus = standardCorpus().front().Name;
  R.ModelSpecs = {"sc", "tsc"};
  Engine.evaluate(R);
  EXPECT_EQ(Cache.stats().PlansCached, 2u);

  Cache.clear();
  EXPECT_EQ(Cache.stats().PlansCached, 0u);
}

} // namespace
