//===- PowerModel.cpp - Power with transactions ------------------------------==//

#include "models/PowerModel.h"

using namespace tmw;

const char *PowerModel::name() const {
  return (Cfg.Tfence || Cfg.StrongIsol || Cfg.TxnOrder || Cfg.TxnCancelsRmw ||
          Cfg.TProp1 || Cfg.TProp2 || Cfg.Thb)
             ? "Power+TM"
             : "Power";
}

Relation PowerModel::preservedProgramOrder(const Execution &X) const {
  unsigned N = X.size();
  EventSet R = X.reads(), W = X.writes();

  Relation Dd = X.Addr | X.Data;
  Relation PoLoc = X.poLoc();
  // Read-different-writes and detour shapes (same-location refinements).
  Relation Rdw = PoLoc & X.fre().compose(X.rfe());
  Relation Detour = PoLoc & X.coe().compose(X.rfe());
  // ctrl+isync: control dependency with an isync before the target.
  Relation CtrlIsync = X.Ctrl & X.fenceRel(FenceKind::ISync);

  Relation Ii0 = Dd | X.rfi() | Rdw;
  Relation Ci0 = CtrlIsync | Detour;
  Relation Ic0(N);
  Relation Cc0 = Dd | PoLoc | X.Ctrl | X.Addr.compose(X.Po);

  // Least fixpoint of the mutually recursive ii/ci/ic/cc definitions.
  Relation Ii = Ii0, Ci = Ci0, Ic = Ic0, Cc = Cc0;
  for (;;) {
    Relation NewIi = Ii0 | Ci | Ic.compose(Ci) | Ii.compose(Ii);
    Relation NewCi = Ci0 | Ci.compose(Ii) | Cc.compose(Ci);
    Relation NewIc = Ic0 | Ii | Cc | Ic.compose(Cc) | Ii.compose(Ic);
    Relation NewCc = Cc0 | Ci | Ci.compose(Ic) | Cc.compose(Cc);
    if (NewIi == Ii && NewCi == Ci && NewIc == Ic && NewCc == Cc)
      break;
    Ii = NewIi;
    Ci = NewCi;
    Ic = NewIc;
    Cc = NewCc;
  }

  return (Ii & Relation::cross(R, R, N)) | (Ic & Relation::cross(R, W, N));
}

Relation PowerModel::happensBefore(const Execution &X) const {
  unsigned N = X.size();
  EventSet R = X.reads(), W = X.writes();

  Relation Sync = X.fenceRel(FenceKind::Sync);
  Relation LwSync =
      X.fenceRel(FenceKind::LwSync) - Relation::cross(W, R, N);
  Relation Fence = Sync | LwSync;
  if (Cfg.Tfence)
    Fence |= X.tfence();

  Relation Ihb = preservedProgramOrder(X) | Fence;
  Relation Rfe = X.rfe();
  Relation Hb = Rfe.optional().compose(Ihb).compose(Rfe.optional());

  if (Cfg.Thb) {
    // thb = (rfe u ((fre u coe)* ; ihb))* ; (fre u coe)* ; rfe?
    Relation FreCoe = (X.fre() | X.coe()).reflexiveTransitiveClosure();
    Relation Chain =
        (Rfe | FreCoe.compose(Ihb)).reflexiveTransitiveClosure();
    Relation Thb = Chain.compose(FreCoe).compose(Rfe.optional());
    Hb |= weakLift(Thb, X.stxn());
  }
  return Hb;
}

ConsistencyResult PowerModel::check(const Execution &X) const {
  unsigned N = X.size();
  Relation Com = X.com();
  if (!(X.poLoc() | Com).isAcyclic())
    return ConsistencyResult::fail("Coherence");

  if (!(X.Rmw & X.fre().compose(X.coe())).isEmpty())
    return ConsistencyResult::fail("RMWIsol");

  EventSet W = X.writes(), Rd = X.reads();
  Relation Sync = X.fenceRel(FenceKind::Sync);
  Relation LwSync =
      X.fenceRel(FenceKind::LwSync) - Relation::cross(W, Rd, N);
  Relation Tfence = X.tfence();
  Relation Fence = Sync | LwSync;
  if (Cfg.Tfence)
    Fence |= Tfence;

  Relation Hb = happensBefore(X);
  if (!Hb.isAcyclic())
    return ConsistencyResult::fail("Order");

  Relation HbStar = Hb.reflexiveTransitiveClosure();
  Relation Rfe = X.rfe();
  Relation Stxn = X.stxn();
  Relation IdW = Relation::identityOn(W, N);

  // prop: how fences constrain the order in which writes propagate.
  Relation Efence = Rfe.optional().compose(Fence).compose(Rfe.optional());
  Relation Prop1 = IdW.compose(Efence).compose(HbStar).compose(IdW);
  Relation SyncLike = Sync;
  if (Cfg.Tfence)
    SyncLike |= Tfence;
  Relation Prop2 = X.external(Com)
                       .reflexiveTransitiveClosure()
                       .compose(Efence.reflexiveTransitiveClosure())
                       .compose(HbStar)
                       .compose(SyncLike)
                       .compose(HbStar);
  Relation Prop = Prop1 | Prop2;
  if (Cfg.TProp1)
    Prop |= Rfe.compose(Stxn).compose(IdW);
  if (Cfg.TProp2)
    Prop |= Stxn.compose(Rfe);

  if (!(X.Co | Prop).isAcyclic())
    return ConsistencyResult::fail("Propagation");

  if (!X.fre().compose(Prop).compose(HbStar).isIrreflexive())
    return ConsistencyResult::fail("Observation");

  if (Cfg.StrongIsol && !strongLift(Com, Stxn).isAcyclic())
    return ConsistencyResult::fail("StrongIsol");
  if (Cfg.TxnOrder && !strongLift(Hb, Stxn).isAcyclic())
    return ConsistencyResult::fail("TxnOrder");
  if (Cfg.TxnCancelsRmw && !(X.Rmw & Tfence.transitiveClosure()).isEmpty())
    return ConsistencyResult::fail("TxnCancelsRMW");

  return ConsistencyResult::ok();
}
