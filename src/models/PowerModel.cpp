//===- PowerModel.cpp - Power with transactions ------------------------------==//

#include "models/PowerModel.h"

using namespace tmw;

namespace {

/// Indices into `PowerAxioms` (= `AxiomMask` bit positions).
enum : unsigned { kCoherence, kRMWIsol, kTfence, kThb, kOrder, kTProp1,
                  kTProp2, kPropagation, kObservation, kStrongIsol,
                  kTxnOrder, kTxnCancelsRMW };

/// memoTerm tags and per-term salts (the mask bits each term reads).
constexpr char PpoTag = 0, FenceTag = 0, HbTag = 0, HbStarTag = 0,
               PropTag = 0;
constexpr uint32_t kFenceSalt = 1u << kTfence;
constexpr uint32_t kHbSalt = (1u << kTfence) | (1u << kThb);
constexpr uint32_t kPropSalt =
    kHbSalt | (1u << kTProp1) | (1u << kTProp2);

/// ppo: the ii/ic/ci/cc least fixpoint. Transaction-independent, so one
/// computation serves every placement over a base execution.
const Relation &ppo(const ExecutionAnalysis &A) {
  return A.memoTerm(&PpoTag, 0, /*TxnDependent=*/false, [&] {
    unsigned N = A.size();
    EventSet R = A.reads(), W = A.writes();

    Relation Dd = A.addr() | A.data();
    const Relation &PoLoc = A.poLoc();
    // Read-different-writes and detour shapes (same-location refinements).
    Relation Rdw = PoLoc & A.fre().compose(A.rfe());
    Relation Detour = PoLoc & A.coe().compose(A.rfe());
    // ctrl+isync: control dependency with an isync before the target.
    Relation CtrlIsync = A.ctrl() & A.fenceRel(FenceKind::ISync);

    Relation Ii0 = Dd | A.rfi() | Rdw;
    Relation Ci0 = CtrlIsync | Detour;
    Relation Ic0(N);
    Relation Cc0 = Dd | PoLoc | A.ctrl() | A.addr().compose(A.po());

    // Least fixpoint of the mutually recursive ii/ci/ic/cc definitions.
    Relation Ii = Ii0, Ci = Ci0, Ic = Ic0, Cc = Cc0;
    for (;;) {
      Relation NewIi = Ii0 | Ci | Ic.compose(Ci) | Ii.compose(Ii);
      Relation NewCi = Ci0 | Ci.compose(Ii) | Cc.compose(Ci);
      Relation NewIc = Ic0 | Ii | Cc | Ic.compose(Cc) | Ii.compose(Ic);
      Relation NewCc = Cc0 | Ci | Ci.compose(Ic) | Cc.compose(Cc);
      if (NewIi == Ii && NewCi == Ci && NewIc == Ic && NewCc == Cc)
        break;
      Ii = NewIi;
      Ci = NewCi;
      Ic = NewIc;
      Cc = NewCc;
    }

    return (Ii & Relation::cross(R, R, N)) | (Ic & Relation::cross(R, W, N));
  });
}

/// fence = sync u (lwsync \ W x R), plus tfence when enabled.
const Relation &fence(const ExecutionAnalysis &A, AxiomMask M) {
  bool Tfence = M.test(kTfence);
  return A.memoTerm(&FenceTag, M.bits() & kFenceSalt, Tfence, [&] {
    unsigned N = A.size();
    Relation F = A.fenceRel(FenceKind::Sync) |
                 (A.fenceRel(FenceKind::LwSync) -
                  Relation::cross(A.writes(), A.reads(), N));
    if (Tfence)
      F |= A.tfence();
    return F;
  });
}

bool hbTxnDependent(AxiomMask M) {
  return M.test(kTfence) || M.test(kThb);
}

const Relation &hb(const ExecutionAnalysis &A, AxiomMask M) {
  return A.memoTerm(&HbTag, M.bits() & kHbSalt, hbTxnDependent(M), [&] {
    Relation Ihb = ppo(A) | fence(A, M);
    const Relation &Rfe = A.rfe();
    Relation Hb = Rfe.optional().compose(Ihb).compose(Rfe.optional());

    if (M.test(kThb)) {
      // thb = (rfe u ((fre u coe)* ; ihb))* ; (fre u coe)* ; rfe?
      Relation FreCoe = (A.fre() | A.coe()).reflexiveTransitiveClosure();
      Relation Chain =
          (Rfe | FreCoe.compose(Ihb)).reflexiveTransitiveClosure();
      Relation Thb = Chain.compose(FreCoe).compose(Rfe.optional());
      Hb |= weakLift(Thb, A.stxn());
    }
    return Hb;
  });
}

const Relation &hbStar(const ExecutionAnalysis &A, AxiomMask M) {
  return A.memoTerm(&HbStarTag, M.bits() & kHbSalt, hbTxnDependent(M),
                    [&] { return hb(A, M).reflexiveTransitiveClosure(); });
}

/// prop: how fences constrain the order in which writes propagate, with
/// the tprop1/tprop2 TM contributions when enabled.
const Relation &prop(const ExecutionAnalysis &A, AxiomMask M) {
  bool TxnDep = hbTxnDependent(M) || M.test(kTProp1) || M.test(kTProp2);
  return A.memoTerm(&PropTag, M.bits() & kPropSalt, TxnDep, [&] {
    unsigned N = A.size();
    EventSet W = A.writes();
    const Relation &Fence = fence(A, M);
    const Relation &HbStar = hbStar(A, M);
    const Relation &Rfe = A.rfe();
    Relation IdW = Relation::identityOn(W, N);

    Relation Efence = Rfe.optional().compose(Fence).compose(Rfe.optional());
    Relation Prop1 = IdW.compose(Efence).compose(HbStar).compose(IdW);
    Relation SyncLike = A.fenceRel(FenceKind::Sync);
    if (M.test(kTfence))
      SyncLike |= A.tfence();
    Relation Prop2 = A.external(A.com())
                         .reflexiveTransitiveClosure()
                         .compose(Efence.reflexiveTransitiveClosure())
                         .compose(HbStar)
                         .compose(SyncLike)
                         .compose(HbStar);
    Relation Prop = Prop1 | Prop2;
    if (M.test(kTProp1))
      Prop |= Rfe.compose(A.stxn()).compose(IdW);
    if (M.test(kTProp2))
      Prop |= A.stxn().compose(Rfe);
    return Prop;
  });
}

Relation thbTerm(const ExecutionAnalysis &A, AxiomMask M) {
  // Diagnostic rendering of the modifier: the hb relation it strengthens.
  return hb(A, M);
}

Relation tprop1Term(const ExecutionAnalysis &A, AxiomMask) {
  return A.rfe().compose(A.stxn()).compose(
      Relation::identityOn(A.writes(), A.size()));
}

Relation tprop2Term(const ExecutionAnalysis &A, AxiomMask) {
  return A.stxn().compose(A.rfe());
}

Relation order(const ExecutionAnalysis &A, AxiomMask M) { return hb(A, M); }

Relation propagation(const ExecutionAnalysis &A, AxiomMask M) {
  return A.co() | prop(A, M);
}

Relation observation(const ExecutionAnalysis &A, AxiomMask M) {
  return A.fre().compose(prop(A, M)).compose(hbStar(A, M));
}

Relation txnOrder(const ExecutionAnalysis &A, AxiomMask M) {
  return strongLift(hb(A, M), A.stxn());
}

// Axiom salts (Axiom.h): the hb-derived terms read {tfence, thb}; the
// prop-derived terms additionally read {tprop1, tprop2} — the same
// footprints handed to memoTerm above. Everything else ignores the mask.
// TxnCancelsRMW is the shared `terms::txnCancelsRmw` (one definition with
// ARMv8, and the guard term of the cross-arch hierarchy edges).
//
// Vocabulary footprints (Axiom.h): tprop1/tprop2 compose through `stxn`
// and tfence/TxnCancelsRMW through the implicit transaction fences, so
// all are empty on txn-free executions ({Txn}); RMWIsol is empty without
// RMW pairs ({Rmw}). The hb/prop compounds, `thb` (which renders hb), and
// the strong-lift terms read plain po/com — full footprint.
const Axiom PowerAxioms[] = {
    {"Coherence", AxiomKind::Acyclic, terms::coherence, /*Tm=*/false,
     /*Modifier=*/false, /*Salt=*/0, /*Footprint=*/~0u},
    {"RMWIsol", AxiomKind::Empty, terms::rmwIsolation, /*Tm=*/false,
     /*Modifier=*/false, /*Salt=*/0, /*Footprint=*/vocab::Rmw},
    {"tfence", AxiomKind::Acyclic, terms::tfence, /*Tm=*/true,
     /*Modifier=*/true, /*Salt=*/0, /*Footprint=*/vocab::Txn},
    {"thb", AxiomKind::Acyclic, thbTerm, /*Tm=*/true, /*Modifier=*/true,
     /*Salt=*/kHbSalt, /*Footprint=*/~0u},
    {"Order", AxiomKind::Acyclic, order, /*Tm=*/false, /*Modifier=*/false,
     /*Salt=*/kHbSalt, /*Footprint=*/~0u},
    {"tprop1", AxiomKind::Acyclic, tprop1Term, /*Tm=*/true,
     /*Modifier=*/true, /*Salt=*/0, /*Footprint=*/vocab::Txn},
    {"tprop2", AxiomKind::Acyclic, tprop2Term, /*Tm=*/true,
     /*Modifier=*/true, /*Salt=*/0, /*Footprint=*/vocab::Txn},
    {"Propagation", AxiomKind::Acyclic, propagation, /*Tm=*/false,
     /*Modifier=*/false, /*Salt=*/kPropSalt, /*Footprint=*/~0u},
    {"Observation", AxiomKind::Irreflexive, observation, /*Tm=*/false,
     /*Modifier=*/false, /*Salt=*/kPropSalt, /*Footprint=*/~0u},
    {"StrongIsol", AxiomKind::Acyclic, terms::strongIsolation, /*Tm=*/true,
     /*Modifier=*/false, /*Salt=*/0, /*Footprint=*/~0u},
    {"TxnOrder", AxiomKind::Acyclic, txnOrder, /*Tm=*/true,
     /*Modifier=*/false, /*Salt=*/kHbSalt, /*Footprint=*/~0u},
    {"TxnCancelsRMW", AxiomKind::Empty, terms::txnCancelsRmw, /*Tm=*/true,
     /*Modifier=*/false, /*Salt=*/0, /*Footprint=*/vocab::Txn},
};

} // namespace

PowerModel::PowerModel(Config C) {
  Mask.set(kTfence, C.Tfence);
  Mask.set(kThb, C.Thb);
  Mask.set(kTProp1, C.TProp1);
  Mask.set(kTProp2, C.TProp2);
  Mask.set(kStrongIsol, C.StrongIsol);
  Mask.set(kTxnOrder, C.TxnOrder);
  Mask.set(kTxnCancelsRMW, C.TxnCancelsRmw);
}

AxiomList PowerModel::axioms() const { return PowerAxioms; }

Relation PowerModel::preservedProgramOrder(
    const ExecutionAnalysis &A) const {
  return ppo(A);
}

Relation PowerModel::happensBefore(const ExecutionAnalysis &A) const {
  return hb(A, Mask);
}

PowerModel::Config PowerModel::config() const {
  return {Mask.test(kTfence),  Mask.test(kStrongIsol),
          Mask.test(kTxnOrder), Mask.test(kTxnCancelsRMW),
          Mask.test(kTProp1),  Mask.test(kTProp2),
          Mask.test(kThb)};
}
