//===- QueryIO.cpp - JSON wire form of the query API ---------------------------==//

#include "query/QueryIO.h"

#include "query/Json.h"

#include <cinttypes>
#include <cstdio>

using namespace tmw;

namespace {

void appendUint(std::string &Out, uint64_t V) {
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "%" PRIu64, V);
  Out += Buf;
}

void appendInt(std::string &Out, int64_t V) {
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "%" PRId64, V);
  Out += Buf;
}

void appendSeconds(std::string &Out, double V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.6f", V);
  Out += Buf;
}

void appendOutcome(std::string &Out, const Outcome &O) {
  Out += "{\"regs\": [";
  bool First = true;
  for (const auto &[T, L, V] : O.RegValues) {
    if (!First)
      Out += ", ";
    First = false;
    Out += '[';
    appendUint(Out, T);
    Out += ", ";
    appendUint(Out, L);
    Out += ", ";
    appendInt(Out, V);
    Out += ']';
  }
  Out += "], \"mem\": [";
  First = true;
  for (int V : O.MemValues) {
    if (!First)
      Out += ", ";
    First = false;
    appendInt(Out, V);
  }
  Out += "]}";
}

void appendVerdict(std::string &Out, const ModelVerdict &V) {
  Out += "{\"spec\": ";
  jsonAppendString(Out, V.Spec);
  Out += ", \"allowed\": ";
  Out += V.Allowed ? "true" : "false";
  Out += ", \"consistent\": ";
  appendUint(Out, V.Consistent);
  Out += ", \"first_forbidden\": ";
  appendInt(Out, V.FirstForbidden);
  Out += ", \"failed_axioms\": [";
  bool First = true;
  for (const FailedAxiomInfo &F : V.FailedAxioms) {
    if (!First)
      Out += ", ";
    First = false;
    Out += "{\"axiom\": ";
    jsonAppendString(Out, F.Axiom);
    Out += ", \"witness\": [";
    bool FirstW = true;
    for (EventId E : F.Witness) {
      if (!FirstW)
        Out += ", ";
      FirstW = false;
      appendUint(Out, E);
    }
    Out += "]}";
  }
  Out += "], \"outcomes\": [";
  First = true;
  for (const Outcome &O : V.AllowedOutcomes) {
    if (!First)
      Out += ", ";
    First = false;
    appendOutcome(Out, O);
  }
  Out += "]}";
}

bool parseOutcome(const JsonValue &V, Outcome &Out, std::string *Error) {
  auto Fail = [&](const char *Msg) {
    if (Error)
      *Error = Msg;
    return false;
  };
  const JsonValue *Regs = V.get("regs");
  const JsonValue *Mem = V.get("mem");
  if (!V.isObject() || !Regs || !Regs->isArray() || !Mem || !Mem->isArray())
    return Fail("outcome: expected {regs: [...], mem: [...]}");
  for (const JsonValue &R : Regs->Arr) {
    if (!R.isArray() || R.Arr.size() != 3 || !R.Arr[0].isNumber() ||
        !R.Arr[1].isNumber() || !R.Arr[2].isNumber())
      return Fail("outcome: bad reg triple");
    Out.RegValues.push_back({static_cast<unsigned>(R.Arr[0].Num),
                             static_cast<unsigned>(R.Arr[1].Num),
                             static_cast<int>(R.Arr[2].Num)});
  }
  for (const JsonValue &M : Mem->Arr) {
    if (!M.isNumber())
      return Fail("outcome: bad mem value");
    Out.MemValues.push_back(static_cast<int>(M.Num));
  }
  return true;
}

bool parseVerdict(const JsonValue &V, ModelVerdict &Out,
                  std::string *Error) {
  auto Fail = [&](const char *Msg) {
    if (Error)
      *Error = Msg;
    return false;
  };
  if (!V.isObject())
    return Fail("verdict: expected an object");
  Out.Spec = std::string(V.getString("spec"));
  Out.Allowed = V.getBool("allowed");
  Out.Consistent = V.getUint("consistent");
  // Through the integer-preserving token path: u64-range counts and the
  // -1 sentinel survive a round trip exactly (a double read would round
  // anything above 2^53).
  Out.FirstForbidden = V.getInt("first_forbidden", -1);
  if (const JsonValue *Fa = V.get("failed_axioms"); Fa && Fa->isArray())
    for (const JsonValue &F : Fa->Arr) {
      if (!F.isObject())
        return Fail("verdict: bad failed_axioms entry");
      FailedAxiomInfo Info;
      Info.Axiom = std::string(F.getString("axiom"));
      if (const JsonValue *W = F.get("witness"); W && W->isArray())
        for (const JsonValue &E : W->Arr) {
          if (!E.isNumber())
            return Fail("verdict: bad witness event");
          Info.Witness.push_back(static_cast<EventId>(E.Num));
        }
      Out.FailedAxioms.push_back(std::move(Info));
    }
  if (const JsonValue *Os = V.get("outcomes"); Os && Os->isArray())
    for (const JsonValue &O : Os->Arr) {
      Outcome Parsed;
      if (!parseOutcome(O, Parsed, Error))
        return false;
      Out.AllowedOutcomes.push_back(std::move(Parsed));
    }
  return true;
}

/// Shared batch-parsing shape: `{"schema": ..., Key: [...]}`, a bare
/// array, or a single object.
template <class T, class ParseFn>
bool batchFromJson(const std::string &Text, const char *Key, ParseFn Parse,
                   std::vector<T> &Out, std::string *Error) {
  std::optional<JsonValue> V = parseJson(Text, Error);
  if (!V)
    return false;
  const JsonValue *List = nullptr;
  if (V->isObject()) {
    List = V->get(Key);
    if (!List) {
      // A single object.
      T One;
      if (!Parse(*V, One, Error))
        return false;
      Out.push_back(std::move(One));
      return true;
    }
  } else if (V->isArray()) {
    List = &*V;
  }
  if (!List || !List->isArray()) {
    if (Error)
      *Error = std::string("expected an object with '") + Key +
               "', an array, or a single object";
    return false;
  }
  for (const JsonValue &E : List->Arr) {
    T One;
    if (!Parse(E, One, Error))
      return false;
    Out.push_back(std::move(One));
  }
  return true;
}

} // namespace

std::string tmw::toJson(const CheckRequest &R) {
  std::string Out = "{\"name\": ";
  jsonAppendString(Out, R.Name);
  Out += ", \"source\": ";
  jsonAppendString(Out, R.Source);
  Out += ", \"corpus\": ";
  jsonAppendString(Out, R.Corpus);
  Out += ", \"models\": [";
  bool First = true;
  for (const std::string &Spec : R.ModelSpecs) {
    if (!First)
      Out += ", ";
    First = false;
    jsonAppendString(Out, Spec);
  }
  Out += "], \"explain\": ";
  Out += R.Explain ? "true" : "false";
  Out += ", \"outcomes\": ";
  Out += R.WantOutcomes ? "true" : "false";
  Out += ", \"candidate_cap\": ";
  appendUint(Out, R.CandidateCap);
  Out += '}';
  return Out;
}

std::string tmw::toJson(const CheckResponse &R, bool IncludeTiming) {
  std::string Out = "{\"name\": ";
  jsonAppendString(Out, R.Name);
  Out += ", \"error\": ";
  jsonAppendString(Out, R.Error);
  Out += ", \"error_line\": ";
  appendUint(Out, R.ErrorLine);
  Out += ", \"candidates\": ";
  appendUint(Out, R.Candidates);
  Out += ", \"truncated\": ";
  Out += R.Truncated ? "true" : "false";
  Out += ", \"verdicts\": [";
  bool First = true;
  for (const ModelVerdict &V : R.Verdicts) {
    if (!First)
      Out += ", ";
    First = false;
    appendVerdict(Out, V);
  }
  Out += ']';
  if (IncludeTiming) {
    Out += ", \"seconds\": ";
    appendSeconds(Out, R.Seconds);
  }
  Out += '}';
  return Out;
}

std::string tmw::requestsToJsonLine(std::span<const CheckRequest> Requests) {
  std::string Out = "{\"schema\": \"tmw-query-batch-v1\", \"requests\": [";
  for (size_t I = 0; I < Requests.size(); ++I) {
    if (I)
      Out += ", ";
    Out += toJson(Requests[I]);
  }
  Out += "]}";
  return Out;
}

std::string tmw::batchErrorToJson(const std::string &Error) {
  std::string Out = "{\"schema\": \"tmw-query-verdicts-v1\",\n \"error\": ";
  jsonAppendString(Out, Error);
  Out += ",\n \"responses\": [\n ]}\n";
  return Out;
}

std::string tmw::requestsToJson(std::span<const CheckRequest> Requests) {
  std::string Out = "{\"schema\": \"tmw-query-batch-v1\",\n \"requests\": [\n";
  for (size_t I = 0; I < Requests.size(); ++I) {
    Out += "  ";
    Out += toJson(Requests[I]);
    if (I + 1 < Requests.size())
      Out += ',';
    Out += '\n';
  }
  Out += " ]}\n";
  return Out;
}

std::string tmw::responsesToJson(std::span<const CheckResponse> Responses,
                                 const BatchTelemetry *Telemetry) {
  std::string Out =
      "{\"schema\": \"tmw-query-verdicts-v1\",\n \"responses\": [\n";
  for (size_t I = 0; I < Responses.size(); ++I) {
    Out += "  ";
    Out += toJson(Responses[I], /*IncludeTiming=*/Telemetry != nullptr);
    if (I + 1 < Responses.size())
      Out += ',';
    Out += '\n';
  }
  Out += " ]";
  if (Telemetry) {
    Out += ",\n \"telemetry\": {\"seconds\": ";
    appendSeconds(Out, Telemetry->Seconds);
    Out += ", \"programs\": ";
    appendUint(Out, Telemetry->Programs);
    Out += ", \"candidates\": ";
    appendUint(Out, Telemetry->Candidates);
    Out += ", \"checks\": ";
    appendUint(Out, Telemetry->Checks);
    // Cross-spec plan accounting (zeros under independent evaluation);
    // telemetry-only, so the canonical responses stay byte-identical
    // across strategies.
    Out += ", \"plan\": {\"term_evals\": ";
    appendUint(Out, Telemetry->Plan.TermEvals);
    Out += ", \"term_hits\": ";
    appendUint(Out, Telemetry->Plan.TermHits);
    Out += ", \"spec_evals\": ";
    appendUint(Out, Telemetry->Plan.SpecEvals);
    Out += ", \"spec_short_circuits\": ";
    appendUint(Out, Telemetry->Plan.SpecShortCircuits);
    Out += ", \"discharged\": ";
    appendUint(Out, Telemetry->Plan.Discharged);
    Out += ", \"compiles\": ";
    appendUint(Out, Telemetry->Plan.Compiles);
    Out += ", \"cache_hits\": ";
    appendUint(Out, Telemetry->Plan.CacheHits);
    Out += '}';
    // Persistent verdict-store traffic (zeros without a --store); like
    // the plan block, telemetry-only so the canonical responses stay
    // byte-identical with and without a store.
    Out += ", \"store\": {\"lookups\": ";
    appendUint(Out, Telemetry->Store.Lookups);
    Out += ", \"hits\": ";
    appendUint(Out, Telemetry->Store.Hits);
    Out += ", \"appends\": ";
    appendUint(Out, Telemetry->Store.Appends);
    Out += '}';
    Out += ", \"workers\": [";
    bool First = true;
    for (const WorkerLoad &L : Telemetry->Workers) {
      if (!First)
        Out += ", ";
      First = false;
      Out += "{\"busy_seconds\": ";
      appendSeconds(Out, L.BusySeconds);
      Out += ", \"tasks\": ";
      appendUint(Out, L.Tasks);
      Out += ", \"steals\": ";
      appendUint(Out, L.Steals);
      Out += ", \"candidates\": ";
      appendUint(Out, L.BasesVisited);
      Out += '}';
    }
    Out += "]}";
  }
  Out += "}\n";
  return Out;
}

bool tmw::requestFromJson(const JsonValue &V, CheckRequest &Out,
                          std::string *Error) {
  if (!V.isObject()) {
    if (Error)
      *Error = "request: expected an object";
    return false;
  }
  Out.Name = std::string(V.getString("name"));
  Out.Source = std::string(V.getString("source"));
  Out.Corpus = std::string(V.getString("corpus"));
  if (const JsonValue *Models = V.get("models"); Models && Models->isArray())
    for (const JsonValue &M : Models->Arr) {
      if (!M.isString()) {
        if (Error)
          *Error = "request: bad model spec (expected a string)";
        return false;
      }
      Out.ModelSpecs.push_back(M.Str);
    }
  Out.Explain = V.getBool("explain");
  Out.WantOutcomes = V.getBool("outcomes");
  Out.CandidateCap = V.getUint("candidate_cap");
  return true;
}

bool tmw::responseFromJson(const JsonValue &V, CheckResponse &Out,
                           std::string *Error) {
  if (!V.isObject()) {
    if (Error)
      *Error = "response: expected an object";
    return false;
  }
  Out.Name = std::string(V.getString("name"));
  Out.Error = std::string(V.getString("error"));
  Out.ErrorLine = static_cast<unsigned>(V.getUint("error_line"));
  Out.Candidates = V.getUint("candidates");
  Out.Truncated = V.getBool("truncated");
  if (const JsonValue *Vs = V.get("verdicts"); Vs && Vs->isArray())
    for (const JsonValue &Verdict : Vs->Arr) {
      ModelVerdict Parsed;
      if (!parseVerdict(Verdict, Parsed, Error))
        return false;
      Out.Verdicts.push_back(std::move(Parsed));
    }
  Out.Seconds = V.getNumber("seconds");
  return true;
}

bool tmw::requestsFromJson(const std::string &Text,
                           std::vector<CheckRequest> &Out,
                           std::string *Error) {
  return batchFromJson<CheckRequest>(
      Text, "requests",
      [](const JsonValue &V, CheckRequest &R, std::string *E) {
        return requestFromJson(V, R, E);
      },
      Out, Error);
}

bool tmw::responsesFromJson(const std::string &Text,
                            std::vector<CheckResponse> &Out,
                            std::string *Error) {
  return batchFromJson<CheckResponse>(
      Text, "responses",
      [](const JsonValue &V, CheckResponse &R, std::string *E) {
        return responseFromJson(V, R, E);
      },
      Out, Error);
}
