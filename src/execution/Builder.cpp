//===- Builder.cpp - Fluent construction of executions ----------------------==//

#include "execution/Builder.h"

#include <algorithm>

using namespace tmw;

EventId ExecutionBuilder::append(const Event &Ev) {
  // Exactly kMaxEvents events are legal, matching Execution::clear.
  assert(Events.size() < kMaxEvents && "execution too large");
  Events.push_back(Ev);
  return static_cast<EventId>(Events.size() - 1);
}

EventId ExecutionBuilder::read(unsigned Thread, LocId Loc, MemOrder MO) {
  Event Ev;
  Ev.Kind = EventKind::Read;
  Ev.Thread = Thread;
  Ev.Loc = Loc;
  Ev.Order = MO;
  return append(Ev);
}

EventId ExecutionBuilder::write(unsigned Thread, LocId Loc, MemOrder MO,
                                int Value) {
  Event Ev;
  Ev.Kind = EventKind::Write;
  Ev.Thread = Thread;
  Ev.Loc = Loc;
  Ev.Order = MO;
  Ev.WrittenValue = Value;
  return append(Ev);
}

EventId ExecutionBuilder::fence(unsigned Thread, FenceKind K, MemOrder MO) {
  Event Ev;
  Ev.Kind = EventKind::Fence;
  Ev.Thread = Thread;
  Ev.Fence = K;
  Ev.Order = MO;
  return append(Ev);
}

EventId ExecutionBuilder::lockCall(unsigned Thread, EventKind K) {
  assert((K == EventKind::Lock || K == EventKind::Unlock ||
          K == EventKind::TxLock || K == EventKind::TxUnlock) &&
         "not a lock method call");
  Event Ev;
  Ev.Kind = K;
  Ev.Thread = Thread;
  return append(Ev);
}

void ExecutionBuilder::rf(EventId W, EventId R) { RfEdges.push_back({W, R}); }
void ExecutionBuilder::co(EventId A, EventId B) { CoEdges.push_back({A, B}); }
void ExecutionBuilder::addr(EventId A, EventId B) {
  AddrEdges.push_back({A, B});
}
void ExecutionBuilder::data(EventId A, EventId B) {
  DataEdges.push_back({A, B});
}
void ExecutionBuilder::ctrl(EventId A, EventId B) {
  CtrlEdges.push_back({A, B});
}
void ExecutionBuilder::rmw(EventId A, EventId B) {
  RmwEdges.push_back({A, B});
}

int ExecutionBuilder::txn(std::initializer_list<EventId> Members,
                          bool Atomic) {
  Txns.push_back({std::vector<EventId>(Members), Atomic});
  return static_cast<int>(Txns.size() - 1);
}

int ExecutionBuilder::cr(std::initializer_list<EventId> Members) {
  Crs.push_back(std::vector<EventId>(Members));
  return static_cast<int>(Crs.size() - 1);
}

Execution ExecutionBuilder::buildUnchecked() const {
  Execution X(static_cast<unsigned>(Events.size()));
  for (unsigned E = 0; E < Events.size(); ++E)
    X.event(E) = Events[E];

  // po: strict total order per thread in insertion order.
  for (unsigned A = 0; A < Events.size(); ++A)
    for (unsigned B = A + 1; B < Events.size(); ++B)
      if (Events[A].Thread == Events[B].Thread)
        X.Po.insert(A, B);

  for (auto [A, B] : RfEdges)
    X.Rf.insert(A, B);
  for (auto [A, B] : AddrEdges)
    X.Addr.insert(A, B);
  for (auto [A, B] : DataEdges)
    X.Data.insert(A, B);
  for (auto [A, B] : RmwEdges)
    X.Rmw.insert(A, B);

  // ctrl: forward closure within po.
  for (auto [A, B] : CtrlEdges) {
    X.Ctrl.insert(A, B);
    for (unsigned C = 0; C < Events.size(); ++C)
      if (X.Po.contains(B, C))
        X.Ctrl.insert(A, C);
  }

  // co: complete the user edges to a strict total order per location,
  // breaking ties by event id (a stable topological extension).
  unsigned NumLocs = X.numLocations();
  for (unsigned L = 0; L < NumLocs; ++L) {
    std::vector<EventId> Ws;
    for (unsigned E = 0; E < Events.size(); ++E)
      if (Events[E].isWrite() && Events[E].Loc == static_cast<LocId>(L))
        Ws.push_back(E);
    Relation UserCo(X.size());
    for (auto [A, B] : CoEdges)
      if (Events[A].Loc == static_cast<LocId>(L))
        UserCo.insert(A, B);
    Relation UserCoPlus = UserCo.transitiveClosure();
    assert(UserCoPlus.isIrreflexive() && "contradictory co edges");
    // Kahn's algorithm with event-id tie-break.
    std::vector<EventId> Order;
    EventSet Remaining;
    for (EventId E : Ws)
      Remaining.insert(E);
    while (!Remaining.empty()) {
      EventId Next = kMaxEvents;
      for (EventId E : Remaining) {
        EventSet Preds = UserCoPlus.restrictRange(EventSet::singleton(E))
                             .domain() &
                         Remaining;
        if (Preds.empty()) {
          Next = E;
          break;
        }
      }
      assert(Next != kMaxEvents && "contradictory co edges");
      Order.push_back(Next);
      Remaining.erase(Next);
    }
    for (unsigned I = 0; I < Order.size(); ++I)
      for (unsigned J = I + 1; J < Order.size(); ++J)
        X.Co.insert(Order[I], Order[J]);
  }

  for (unsigned T = 0; T < Txns.size(); ++T) {
    for (EventId E : Txns[T].first)
      X.Txn[E] = static_cast<int>(T);
    if (Txns[T].second)
      X.AtomicTxns |= uint32_t(1) << T;
  }
  for (unsigned C = 0; C < Crs.size(); ++C)
    for (EventId E : Crs[C])
      X.Cr[E] = static_cast<int>(C);

  return X;
}

Execution ExecutionBuilder::build() const {
  Execution X = buildUnchecked();
  [[maybe_unused]] const char *Err = X.checkWellFormed();
  assert(Err == nullptr && "builder produced an ill-formed execution");
  return X;
}
