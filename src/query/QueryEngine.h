//===- QueryEngine.h - Evaluating batch litmus queries ----------*- C++ -*-==//
///
/// \file
/// The evaluator behind the request/response API (query/Query.h). For one
/// request it runs the whole stack once: resolve every model spec through
/// the registry, parse the program (or fetch the corpus entry), then
/// enumerate the program's candidate executions **once** and fan each
/// candidate out to all requested models through one shared
/// `ExecutionAnalysis` — so six models cost one enumeration plus six
/// axiom evaluations over memoized relations, not six enumerations. This
/// is the enumerate-once/check-many discipline every frontend previously
/// hand-rolled (or failed to: the old benches re-enumerated per model).
///
/// Batches are scheduled on the generic work-stealing pool
/// (`WorkQueue<size_t>`, one task per request, one analysis arena per
/// worker) and results are **streamed in request order**: the callback
/// fires for response i only after responses 0..i-1, whatever order the
/// workers finished in. Verdicts are deterministic — independent of Jobs
/// and of scheduling — because each request is evaluated sequentially by
/// exactly one worker over the fixed candidate enumeration order; only
/// `Seconds` and the telemetry vary run to run.
///
//===----------------------------------------------------------------------===//

#ifndef TMW_QUERY_QUERYENGINE_H
#define TMW_QUERY_QUERYENGINE_H

#include "execution/ExecutionAnalysis.h"
#include "query/Query.h"
#include "query/SessionCache.h"

#include <chrono>
#include <functional>
#include <mutex>
#include <optional>
#include <span>

namespace tmw {

class VerdictStore;

/// How a request's models are evaluated over each candidate.
enum class EvalStrategy : uint8_t {
  /// Compile the request's spec set into one cross-spec evaluation plan
  /// (models/EvalPlan.h): shared obligations are computed once per
  /// candidate and subsumption edges short-circuit whole verdicts. The
  /// default — verdicts are identical to Independent by construction
  /// (pinned by tests/eval_plan_test.cpp and the CI corpus cmp).
  Planned,
  /// Check every model independently through `MemoryModel::consistent`,
  /// sharing only the per-candidate analysis arena — the reference path
  /// the plan is differentially tested against.
  Independent,
};

/// Batch evaluation options.
struct BatchOptions {
  /// Worker threads for `run`/`runAll` (1 = evaluate inline, no threads).
  unsigned Jobs = 1;
  /// Optional resident caches (parsed programs, interned model specs,
  /// compiled evaluation plans) consulted by every evaluation. nullptr =
  /// parse and resolve per request, as a one-shot run does. Caching never
  /// changes a verdict — a cached program/model/plan is identical to a
  /// recomputed one — so cached and uncached runs produce byte-identical
  /// response JSON.
  SessionCache *Cache = nullptr;
  /// Candidate evaluation strategy (Planned and Independent produce
  /// byte-identical canonical JSON; only the telemetry differs).
  EvalStrategy Strategy = EvalStrategy::Planned;
  /// Planned strategy only: specialize each request's plan to the
  /// program's static vocabulary facts (lint/Lint.h), pre-discharging
  /// footprint-disjoint obligations once per program instead of
  /// evaluating them per candidate. Verdict-neutral by the audited
  /// footprint contract — on and off produce byte-identical canonical
  /// JSON (pinned by tests and the CI corpus cmp); only `Discharged`
  /// telemetry differs. Default on.
  bool Specialize = true;
  /// Optional persistent verdict store (store/VerdictStore.h) — the
  /// second, cross-process caching tier below the in-memory caches: a
  /// request whose exact content key (program source, canonical specs,
  /// options, engine version) is stored skips enumeration entirely and
  /// answers from disk. Like `Cache`, verdict-neutral by contract:
  /// stored-hit, memory-hit, and cold evaluation emit byte-for-byte
  /// identical canonical JSON. nullptr = no persistence.
  VerdictStore *Store = nullptr;
};

/// One batch in flight over a caller-owned `WorkQueue<size_t>` — the seam
/// between the engine's evaluation logic and whoever owns the worker
/// threads. `QueryEngine::run` builds a queue and threads per call; the
/// resident query server (server/QueryServer.h) keeps both alive across
/// batches and drives the *same* code, so its responses match one-shot
/// runs byte for byte by construction.
///
/// Protocol: construct over a quiescent queue (the constructor seeds one
/// task per request), have each of the queue's workers call `work` until
/// it returns, then collect results with `take`. Responses stream to the
/// optional callback in request order, whatever order workers finish in.
///
/// The *unseeded* constructor (no queue) is the seam for schedulers that
/// interleave tasks of many batches over one shared pool — the concurrent
/// multi-client server: the owner dispatches `(batch, request-index)`
/// tasks itself and drives `runOne` per task. Request evaluation is the
/// same code either way, so verdict bytes cannot depend on which mode —
/// or how many rival batches — scheduled them.
class BatchRun {
public:
  BatchRun(std::span<const CheckRequest> Requests, WorkQueue<size_t> &Q,
           SessionCache *Cache = nullptr,
           std::function<void(const CheckResponse &)> OnResult = nullptr,
           EvalStrategy Strategy = EvalStrategy::Planned,
           VerdictStore *Store = nullptr, bool Specialize = true);
  /// Unseeded mode: evaluation state for \p NumWorkers external workers;
  /// the caller schedules every request index exactly once via `runOne`.
  BatchRun(std::span<const CheckRequest> Requests, unsigned NumWorkers,
           SessionCache *Cache = nullptr,
           std::function<void(const CheckResponse &)> OnResult = nullptr,
           EvalStrategy Strategy = EvalStrategy::Planned,
           VerdictStore *Store = nullptr, bool Specialize = true);
  BatchRun(const BatchRun &) = delete;
  BatchRun &operator=(const BatchRun &) = delete;

  /// Worker body: pop and evaluate requests until the queue drains.
  /// \p Arena is this worker's persistent analysis arena (created on
  /// first use, retargeted per candidate, reusable across batches).
  void work(unsigned Worker, std::optional<ExecutionAnalysis> &Arena);

  /// Evaluate request \p I (exactly once per index, any thread, any
  /// order). \p Skip marks the index done without evaluating — the
  /// cancellation path for a disconnected client's batch: bookkeeping
  /// still completes, the response stays empty and is discarded by the
  /// owner. Returns true for exactly the call that completed the batch
  /// (every response emitted in order) — after that call returns, no
  /// other `runOne` for this batch is in flight.
  bool runOne(size_t I, unsigned Worker,
              std::optional<ExecutionAnalysis> &Arena, bool Stolen = false,
              bool Skip = false);

  /// After every worker returned: the responses (request order) and the
  /// batch telemetry.
  std::vector<CheckResponse> take(BatchTelemetry &T);

  size_t size() const { return Requests.size(); }

private:
  std::span<const CheckRequest> Requests;
  WorkQueue<size_t> *Q = nullptr;
  SessionCache *Cache;
  std::function<void(const CheckResponse &)> OnResult;
  EvalStrategy Strategy;
  VerdictStore *Store;
  bool Specialize;
  /// Plan cache for cache-less planned batches, so a batch still compiles
  /// each distinct spec set once (a resident `Cache` subsumes it).
  std::optional<SessionCache> BatchPlans;
  std::vector<CheckResponse> Results;
  /// Responses computed but not yet emitted in order (guarded by EmitMu).
  std::vector<char> Done;
  std::vector<WorkerLoad> Loads;
  size_t NextToEmit = 0;
  std::mutex EmitMu;
  std::chrono::steady_clock::time_point T0;
};

/// Stateless evaluator of `CheckRequest` batches; cheap to construct.
/// (For a long-lived session that keeps threads, arenas, and caches
/// resident across batches, see server/QueryServer.h.)
class QueryEngine {
public:
  explicit QueryEngine(BatchOptions Opts = {}) : Opts(Opts) {}

  /// Evaluate one request in the calling thread.
  CheckResponse evaluate(const CheckRequest &R) const;

  /// Evaluate \p Requests on `Opts.Jobs` pool workers, streaming each
  /// response to \p OnResult in request order (the callback runs on
  /// whichever worker completes the front of the order — serialise any
  /// shared state yourself, or use `runAll`). Returns the batch
  /// telemetry.
  BatchTelemetry
  run(std::span<const CheckRequest> Requests,
      const std::function<void(const CheckResponse &)> &OnResult) const;

  /// `run`, materialised: all responses in request order (telemetry
  /// optionally reported through \p Telemetry).
  std::vector<CheckResponse>
  runAll(std::span<const CheckRequest> Requests,
         BatchTelemetry *Telemetry = nullptr) const;

private:
  std::vector<CheckResponse>
  runAllInto(std::span<const CheckRequest> Requests,
             const std::function<void(const CheckResponse &)> &OnResult,
             BatchTelemetry &T) const;

  BatchOptions Opts;
};

} // namespace tmw

#endif // TMW_QUERY_QUERYENGINE_H
