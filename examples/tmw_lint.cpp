//===- tmw_lint.cpp - Litmus-program lint CLI ----------------------------------==//
///
/// CLI frontend of the static litmus-program analyzer (lint/Lint.h): runs
/// every lint rule — unused/uninitialized locations, event and
/// transaction budget overflows, unbalanced or ill-nested txbegin/txend
/// and lock/unlock regions, mispaired RMW halves, postconditions naming
/// nonexistent loads or locations, dependency indices pointing at
/// non-loads — over litmus DSL files and/or the built-in corpus, and
/// reports the static program facts (txn-free, rmw-free, fence kinds,
/// vocabulary) the evaluation planner specializes on.
///
/// Usage:   ./tmw_lint [options] [file.litmus ...]
/// Example: ./tmw_lint --corpus --json > lint_report.json
///          ./tmw_lint sb.litmus mp.litmus
///
/// Flags:
///   --corpus   lint every test of the built-in corpus (litmus/Library.h).
///   --json     emit the canonical `tmw-lint-v1` report (lint/LintIO.h)
///              on stdout: fixed field order, nothing nondeterministic —
///              CI diffs it across runs like the audit and bench
///              artifacts.
///
/// Exit status: 0 when every program lints clean, 1 when any finding was
/// reported (warnings included — the corpus gate wants a clean corpus,
/// not a quiet one) or any file failed to parse, 2 on usage errors.
///
//===----------------------------------------------------------------------===//

#include "lint/Lint.h"
#include "lint/LintIO.h"
#include "litmus/Library.h"
#include "litmus/Parser.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace tmw;

int main(int Argc, char **Argv) {
  bool Corpus = false, Json = false;
  std::vector<const char *> Files;

  for (int I = 1; I < Argc; ++I) {
    const char *A = Argv[I];
    if (std::strcmp(A, "--corpus") == 0) {
      Corpus = true;
    } else if (std::strcmp(A, "--json") == 0) {
      Json = true;
    } else if (std::strncmp(A, "--", 2) == 0) {
      std::fprintf(stderr, "error: unknown flag %s\n", A);
      return 2;
    } else {
      Files.push_back(A);
    }
  }
  if (Files.empty() && !Corpus) {
    std::fprintf(stderr,
                 "usage: tmw_lint [--corpus] [--json] [file.litmus ...]\n");
    return 2;
  }

  // Parse failures are hard errors (exit 1, like a finding), but they do
  // not abort the batch: every other input still gets linted and its own
  // diagnostic, however late in the argument list the bad file sits.
  bool ParseFailed = false;
  std::vector<LintedProgram> Linted;
  auto LintOne = [&](const Program &P, std::string Name) {
    LintedProgram L;
    L.Name = std::move(Name);
    L.Report = lintProgram(P);
    L.Facts = computeFacts(P);
    Linted.push_back(std::move(L));
  };

  for (const char *File : Files) {
    std::ifstream In(File);
    if (!In) {
      std::fprintf(stderr, "error: cannot open %s\n", File);
      return 2;
    }
    std::stringstream Ss;
    Ss << In.rdbuf();
    ParseResult Parsed = parseProgram(Ss.str());
    if (!Parsed) {
      std::fprintf(stderr, "%s:%u: error: %s\n", File, Parsed.ErrorLine,
                   Parsed.Error.c_str());
      ParseFailed = true;
      continue;
    }
    LintOne(Parsed.Prog, File);
  }
  if (Corpus)
    for (const CorpusEntry &E : sharedCorpus())
      LintOne(E.Prog, E.Name);

  size_t Findings = 0;
  for (const LintedProgram &L : Linted)
    Findings += L.Report.Findings.size();

  if (Json) {
    std::fputs(lintReportToJson(Linted).c_str(), stdout);
  } else {
    for (const LintedProgram &L : Linted)
      std::fputs(lintFindingsToText(L).c_str(), stdout);
    std::printf("%zu program%s, %zu finding%s\n", Linted.size(),
                Linted.size() == 1 ? "" : "s", Findings,
                Findings == 1 ? "" : "s");
  }
  return (Findings || ParseFailed) ? 1 : 0;
}
