//===- Lint.h - Static analysis of litmus programs --------------*- C++ -*-==//
///
/// \file
/// A static analyzer over `litmus::Program` with two products:
///
///  * **Diagnostics** (`lintProgram`): structured findings for real DSL
///    mistakes that today surface only as silently-empty candidate sets or
///    vacuous postconditions — unused/uninitialized locations, event or
///    transaction counts exceeding the enumerator's caps (`kMaxEvents`,
///    `kMaxTxns`), unbalanced or ill-nested transaction and lock regions,
///    RMW partner indices that do not pair up, postcondition assertions
///    naming nonexistent loads or locations, and dependency references
///    pointing at non-loads. Surfaced by the `tmw_lint` CLI, by
///    `litmus_tool --lint`, and as a CI gate over the corpus.
///
///  * **Sound program facts** (`computeFacts`): which vocabulary classes
///    (models/Axiom.h `namespace vocab`) the program can possibly speak.
///    The facts *over-approximate* every candidate execution the
///    enumerator can derive from the program — transactions only come from
///    `txbegin`, RMW edges only from declared `rmw:` partners, fences and
///    lock calls map one-to-one — so a vocabulary class absent from the
///    program is absent from every candidate. `EvalPlan::specialize`
///    cashes this in: axiom obligations whose declared `Footprint` is
///    disjoint from the program's vocabulary are discharged to their
///    vacuous verdict once per program. `executionVocabulary` is the
///    execution-level analogue the contract auditor uses to machine-check
///    declared footprints.
///
//===----------------------------------------------------------------------===//

#ifndef TMW_LINT_LINT_H
#define TMW_LINT_LINT_H

#include "litmus/Program.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tmw {

class Execution;

/// Finding severity. Errors mean the program cannot behave as written
/// (the enumerator would drop events, candidates, or whole postconditions
/// silently); warnings flag suspicious-but-legal constructions.
enum class LintSeverity : uint8_t { Error, Warning };

/// Stable lowercase severity name ("error", "warning").
const char *lintSeverityName(LintSeverity S);

/// One lint finding. `Code` is an interned literal (stable across
/// releases; CI scripts may match on it); `Thread`/`Instruction` are -1
/// for program-level findings; `Line` is the 1-based source line when the
/// program was parsed from DSL text (0 for programmatically built
/// programs, which carry no `Program::SrcLines`).
struct LintFinding {
  LintSeverity Severity = LintSeverity::Error;
  std::string_view Code;
  std::string Message;
  int Thread = -1;
  int Instruction = -1;
  unsigned Line = 0;
};

/// All findings for one program, in deterministic rule order (caps and
/// location rules first, then per-thread walks, then postconditions).
struct LintReport {
  std::vector<LintFinding> Findings;

  bool hasErrors() const {
    for (const LintFinding &F : Findings)
      if (F.Severity == LintSeverity::Error)
        return true;
    return false;
  }
};

/// Run every lint rule over \p P.
LintReport lintProgram(const Program &P);

/// Sound static facts about one program (see file comment). Every flag is
/// conservative in the safe direction: `TxnFree = true` *guarantees* no
/// candidate execution has a transaction; `false` promises nothing.
struct ProgramFacts {
  bool TxnFree = true;         ///< No `txbegin` anywhere.
  bool RmwFree = true;         ///< No declared RMW partner anywhere.
  bool LockRegionFree = true;  ///< No lock/unlock/txlock/txunlock calls.
  bool SingleLocation = true;  ///< At most one distinct location accessed.
  bool AtomicOnly = true;      ///< Every access has a C++ memory order.
  /// Bitmask over `FenceKind` values (bit = static_cast<unsigned>(K)) of
  /// the fence flavours that appear.
  uint32_t FenceKinds = 0;
  /// The program's vocabulary: `vocab::Base` plus one bit per class the
  /// program speaks. Superset of `executionVocabulary` of every candidate.
  uint32_t Vocabulary = 0;
};

/// Compute the facts for \p P. O(instructions).
ProgramFacts computeFacts(const Program &P);

/// The vocabulary classes one concrete execution speaks — the
/// execution-level analogue of `ProgramFacts::Vocabulary`, used by the
/// contract auditor's footprint pass to check declared `Axiom::Footprint`
/// values against term behaviour on probe executions.
uint32_t executionVocabulary(const Execution &X);

} // namespace tmw

#endif // TMW_LINT_LINT_H
