//===- FromExecution.h - Executions to litmus tests -------------*- C++ -*-==//
///
/// \file
/// Converts an execution of interest into a litmus test whose postcondition
/// passes exactly when that execution is taken (§2.2, §3.2): every store
/// writes a unique non-zero value per location (its coherence position),
/// every read's register is asserted to hold the value of its rf-source
/// (zero for initial reads), final memory pins the coherence maximum, and
/// transactions are delimited by txbegin/txend with an `ok` location zeroed
/// by the abort handler.
///
//===----------------------------------------------------------------------===//

#ifndef TMW_LITMUS_FROMEXECUTION_H
#define TMW_LITMUS_FROMEXECUTION_H

#include "execution/Execution.h"
#include "litmus/Program.h"

namespace tmw {

/// Mapping from events of the source execution to instructions of the
/// generated program.
struct ExecutionToProgram {
  Program Prog;
  /// Per event: (thread, instruction index).
  std::vector<std::pair<unsigned, unsigned>> InstrOf;
};

/// Build the litmus test of \p X. \p Name labels the test.
///
/// Note (paper footnote 2): with more than two writes to one location the
/// postcondition pins the coherence extremes but not the full order; the
/// candidate-matching used by the simulated hardware compares full
/// outcomes, which is exactly what running such a test measures.
ExecutionToProgram programFromExecution(const Execution &X,
                                        const std::string &Name = "test");

/// The expected outcome of \p X under the value assignment used by
/// `programFromExecution` (rf-source values and final coherence values).
Outcome expectedOutcome(const Execution &X, const Program &P);

} // namespace tmw

#endif // TMW_LITMUS_FROMEXECUTION_H
