//===- integration_test.cpp - End-to-end pipelines ----------------------------==//
///
/// Exercises the full paper workflows across module boundaries:
///
///  1. synthesise Forbid tests -> convert to litmus programs -> run on the
///     simulated hardware -> conformance verdicts;
///  2. the lock-elision discovery -> litmus rendering of Example 1.1;
///  3. candidate enumeration agrees with the operational machine on
///     programs with transactions.
///
//===----------------------------------------------------------------------===//

#include "enumerate/Candidates.h"
#include "execution/Builder.h"
#include "hw/ImplModel.h"
#include "hw/TsoMachine.h"
#include "litmus/FromExecution.h"
#include "litmus/Parser.h"
#include "litmus/Printer.h"
#include "metatheory/LockElision.h"
#include "models/Armv8Model.h"
#include "models/X86Model.h"
#include "synth/Conformance.h"

#include <gtest/gtest.h>

using namespace tmw;

namespace {

TEST(PipelineTest, SynthesiseConvertRunX86) {
  X86Model Tm;
  X86Model Baseline{X86Model::Config::baseline()};
  Vocabulary V = Vocabulary::forArch(Arch::X86);
  ForbidSuite Suite = synthesizeForbid(Tm, Baseline, V, 4, 120.0);
  ASSERT_FALSE(Suite.Tests.empty());

  unsigned Checked = 0;
  for (const Execution &X : Suite.Tests) {
    if (++Checked > 10)
      break; // keep the test fast; the bench runs the full suite
    ExecutionToProgram Conv = programFromExecution(X, "forbid");
    // The intended execution is among the candidates and matches the
    // postcondition.
    unsigned Matching = 0;
    bool IntendedConsistentSomewhere = false;
    for (const Candidate &C : enumerateCandidates(Conv.Prog))
      if (C.O.satisfies(Conv.Prog)) {
        ++Matching;
        IntendedConsistentSomewhere |= Baseline.consistent(C.X);
      }
    EXPECT_GE(Matching, 1u);
    EXPECT_TRUE(IntendedConsistentSomewhere);
    // Never observable on the TSO+TSX machine.
    TsoMachine M(Conv.Prog);
    EXPECT_FALSE(M.postconditionObservable()) << printGeneric(Conv.Prog);
  }
}

TEST(PipelineTest, ElisionWitnessRendersAsExample11) {
  Armv8Model Tm;
  Armv8Model Spec{Armv8Model::Config::baseline()};
  ElisionResult R =
      checkLockElision(Tm, Spec, Arch::Armv8, false, 7, 300.0);
  ASSERT_TRUE(R.CounterexampleFound);

  // The abstract side renders with lock()/unlock() pseudo-calls.
  Program Abstract = programFromExecution(R.Abstract, "example-1.1").Prog;
  std::string Txt = printGeneric(Abstract);
  EXPECT_NE(Txt.find("lock()"), std::string::npos);
  EXPECT_NE(Txt.find("elided"), std::string::npos);

  // The concrete side renders as an ARMv8 litmus test with exclusive and
  // transactional instructions.
  Program Concrete = programFromExecution(R.Concrete, "example-1.1").Prog;
  std::string Asm = printAsm(Concrete, Arch::Armv8);
  EXPECT_NE(Asm.find("LDAXR"), std::string::npos);
  EXPECT_NE(Asm.find("STXR"), std::string::npos);
  EXPECT_NE(Asm.find("TXBEGIN"), std::string::npos);
  EXPECT_NE(Asm.find("STLR"), std::string::npos);
}

TEST(PipelineTest, OperationalAndAxiomaticAgreeOnTransactionalTests) {
  // For a curated set of transactional programs, the set of outcomes
  // reachable on the TSO+TSX machine is a subset of what the axiomatic
  // x86+TM model allows (machine soundness), and the postcondition
  // verdicts agree.
  const char *Sources[] = {
      R"(name txn-mp
loc ok 1
thread 0
  txbegin
  store x 1
  store y 1
  txend
thread 1
  load y
  load x
post mem ok 1
post reg 1 r0 1
post reg 1 r1 0
)",
      R"(name txn-sb
loc ok 1
thread 0
  txbegin
  store x 1
  txend
  load y
thread 1
  txbegin
  store y 1
  txend
  load x
post mem ok 1
post reg 0 r3 0
post reg 1 r3 0
)",
  };
  X86Model Model;
  for (const char *Src : Sources) {
    ParseResult PR = parseProgram(Src);
    ASSERT_TRUE(static_cast<bool>(PR)) << PR.Error;
    TsoMachine M(PR.Prog);
    std::vector<Outcome> Operational = M.reachableOutcomes();
    std::vector<Outcome> Axiomatic = allowedOutcomes(PR.Prog, Model);
    for (const Outcome &O : Operational)
      EXPECT_TRUE(std::find(Axiomatic.begin(), Axiomatic.end(), O) !=
                  Axiomatic.end())
          << PR.Prog.Name << ": machine outcome " << O.str(PR.Prog)
          << " not allowed by the model";
    EXPECT_FALSE(M.postconditionObservable()) << PR.Prog.Name;
    EXPECT_FALSE(postconditionReachable(PR.Prog, Model)) << PR.Prog.Name;
  }
}

TEST(PipelineTest, DslRoundTripPreservesModelVerdicts) {
  // Print a generated litmus test to the DSL, parse it back, and check
  // the postcondition verdict is unchanged.
  ExecutionBuilder B;
  EventId W0 = B.write(0, 0, MemOrder::NonAtomic, 0);
  B.read(0, 1);
  EventId W1 = B.write(1, 1, MemOrder::NonAtomic, 0);
  B.read(1, 0);
  B.txn({W0});
  B.txn({W1});
  Execution X = B.build();

  Program P = programFromExecution(X, "sb-txn").Prog;
  ParseResult R = parseProgram(printDsl(P));
  ASSERT_TRUE(static_cast<bool>(R)) << R.Error;

  X86Model Model;
  EXPECT_EQ(postconditionReachable(P, Model),
            postconditionReachable(R.Prog, Model));
  X86Model Baseline{X86Model::Config::baseline()};
  EXPECT_EQ(postconditionReachable(P, Baseline),
            postconditionReachable(R.Prog, Baseline));
}

} // namespace
