//===- tmw_serve.cpp - The long-lived query server CLI --------------------------==//
///
/// The resident frontend of the batch query engine (server/QueryServer.h):
/// instead of one process per batch, start once and stream batches in —
/// the corpus, parsed programs, resolved model specs, and the worker pool
/// (threads + analysis arenas) stay resident, so repeated CI/bench
/// queries stop paying process startup and re-parsing.
///
/// Wire form (NDJSON): one `tmw-query-batch-v1` document per input line;
/// one `tmw-query-verdicts-v1` document per batch on stdout, byte-for-byte
/// identical to a one-shot `litmus_tool --json` run of the same requests
/// and jobs count. A malformed line answers with an error document and
/// the server lives on.
///
/// Usage:   ./tmw_serve [options]              # serve stdin -> stdout
/// Example: ./tmw_serve --print-corpus-batch | ./tmw_serve --jobs 4
///          ./tmw_serve --jobs 4 --listen /tmp/tmw.sock
///
/// Flags:
///   --jobs N              resident pool workers (strict parse: a
///                         malformed or non-positive N is a usage error).
///   --listen <path>       serve a Unix-domain stream socket at <path>
///                         (connections served serially) instead of stdin.
///   --telemetry           append batch timing + per-worker load to every
///                         verdicts document (forfeits byte-identity with
///                         one-shot runs).
///   --stats               print session counters (batches, cache hits,
///                         evictions, resident evaluation plans) to
///                         stderr at EOF.
///   --print-corpus-batch  emit the built-in corpus as one batch line —
///                         the requests `litmus_tool --corpus --json`
///                         evaluates — and exit; pipe it back into a
///                         server (or save it as a CI fixture).
///
/// Exit status: 0 on clean EOF, 1 on socket errors, 2 on usage errors.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "litmus/Library.h"
#include "query/QueryIO.h"
#include "server/QueryServer.h"
#include "server/Transport.h"

#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>

using namespace tmw;

namespace {

int usageError(const char *Fmt, const char *Arg) {
  std::fprintf(stderr, Fmt, Arg);
  std::fputc('\n', stderr);
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned Jobs = 1;
  bool Telemetry = false, Stats = false, PrintCorpusBatch = false;
  std::string ListenPath;

  for (int I = 1; I < Argc; ++I) {
    const char *A = Argv[I];
    if (std::strcmp(A, "--jobs") == 0 && I + 1 < Argc) {
      Jobs = bench::parseJobsStrict(Argv[++I], "--jobs");
      continue;
    }
    if (std::strncmp(A, "--jobs=", 7) == 0) {
      Jobs = bench::parseJobsStrict(A + 7, "--jobs");
      continue;
    }
    if (std::strcmp(A, "--listen") == 0 && I + 1 < Argc) {
      ListenPath = Argv[++I];
    } else if (std::strncmp(A, "--listen=", 9) == 0) {
      ListenPath = A + 9;
    } else if (std::strcmp(A, "--telemetry") == 0) {
      Telemetry = true;
    } else if (std::strcmp(A, "--stats") == 0) {
      Stats = true;
    } else if (std::strcmp(A, "--print-corpus-batch") == 0) {
      PrintCorpusBatch = true;
    } else {
      return usageError("error: unknown flag %s", A);
    }
  }

  if (PrintCorpusBatch) {
    // The exact requests litmus_tool --corpus --json builds (--json
    // implies outcome collection), as one NDJSON line.
    std::vector<CheckRequest> Requests;
    for (const CorpusEntry &E : sharedCorpus()) {
      CheckRequest R;
      R.Corpus = E.Name;
      R.WantOutcomes = true;
      Requests.push_back(std::move(R));
    }
    std::printf("%s\n", requestsToJsonLine(Requests).c_str());
    return 0;
  }

  // A client that disconnects mid-write must not kill the server.
  std::signal(SIGPIPE, SIG_IGN);

  QueryServer Server({Jobs, Telemetry});
  int Exit = ListenPath.empty()
                 ? server::serveStdio(Server)
                 : server::serveUnixSocket(Server, ListenPath);

  if (Stats) {
    ServerStats St = Server.stats();
    std::fprintf(stderr,
                 "tmw_serve: %llu batches (%llu bad), %llu requests; "
                 "program cache %llu hits / %llu misses (%llu resident, "
                 "%llu evictions); model cache %llu hits / %llu misses; "
                 "plan cache %llu hits / %llu misses (%llu resident)\n",
                 static_cast<unsigned long long>(St.Batches),
                 static_cast<unsigned long long>(St.BadBatches),
                 static_cast<unsigned long long>(St.Requests),
                 static_cast<unsigned long long>(St.Cache.ProgramHits),
                 static_cast<unsigned long long>(St.Cache.ProgramMisses),
                 static_cast<unsigned long long>(St.Cache.ProgramsCached),
                 static_cast<unsigned long long>(St.Cache.ProgramEvictions),
                 static_cast<unsigned long long>(St.Cache.ModelHits),
                 static_cast<unsigned long long>(St.Cache.ModelMisses),
                 static_cast<unsigned long long>(St.Cache.PlanHits),
                 static_cast<unsigned long long>(St.Cache.PlanMisses),
                 static_cast<unsigned long long>(St.Cache.PlansCached));
  }
  return Exit;
}
