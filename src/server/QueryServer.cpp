//===- QueryServer.cpp - The long-lived query server ---------------------------==//

#include "server/QueryServer.h"

#include "litmus/Library.h"
#include "query/QueryIO.h"

#include <atomic>
#include <condition_variable>
#include <istream>
#include <ostream>

using namespace tmw;

/// One concurrently-scheduled batch over the resident pool. Owned by
/// `QueryServer::Active` while in flight; the worker that retires the
/// last task erases it (after firing OnDone). All cross-worker state is
/// either inside `Run` (its own emit lock) or atomic.
class tmw::ServerBatch {
public:
  ServerBatch(uint64_t Id, std::vector<CheckRequest> Owned,
              std::span<const CheckRequest> Requests, unsigned NumWorkers,
              SessionCache *Cache, VerdictStore *Store,
              QueryServer::BatchDone OnDone, unsigned FairnessCap)
      : Id(Id), Owned(std::move(Owned)), Requests(Requests),
        Run(Requests, NumWorkers, Cache, nullptr, EvalStrategy::Planned,
            Store),
        OnDone(std::move(OnDone)),
        Outstanding(Requests.size()),
        NextToSeed(FairnessCap == 0 ? Requests.size()
                                    : std::min<size_t>(FairnessCap,
                                                       Requests.size())) {}

  const uint64_t Id;
  std::vector<CheckRequest> Owned; ///< storage when the batch owns its requests
  std::span<const CheckRequest> Requests;
  BatchRun Run;
  QueryServer::BatchDone OnDone;
  /// Cancelled batches skip evaluation of not-yet-started tasks; the
  /// bookkeeping still runs so completion stays exact.
  std::atomic<bool> Cancelled{false};
  /// Tasks not yet fully retired; the worker that drops it to zero owns
  /// completion (and may delete the batch).
  std::atomic<size_t> Outstanding;
  /// Next request index to feed the pool (fairness-cap incremental
  /// seeding: at most the initial window is in the pool at once, each
  /// retiring task feeds one more).
  std::atomic<size_t> NextToSeed;

  /// How many tasks the submitter seeds up front.
  size_t initialWindow() const { return NextToSeed.load(); }
};

QueryServer::QueryServer(ServerOptions Opts)
    : Opts(Opts), Cache(Opts.MaxCachedPrograms),
      Pool(std::max(1u, Opts.Jobs), /*Persistent=*/true),
      Arenas(std::max(1u, Opts.Jobs)) {
  this->Opts.Jobs = std::max(1u, Opts.Jobs);
  // Touch the shared corpus now so the first batch doesn't pay its parse.
  (void)sharedCorpus();
  // Workers are born once and live until destruction, parked on the
  // empty pool between batches. Even Jobs == 1 gets a worker thread: the
  // transport threads (stdio loop, poll multiplexer) must never block on
  // evaluation themselves.
  Threads.reserve(this->Opts.Jobs);
  for (unsigned W = 0; W < this->Opts.Jobs; ++W)
    Threads.emplace_back(&QueryServer::workerMain, this, W);
}

QueryServer::~QueryServer() {
  Pool.cancel();
  for (std::thread &Th : Threads)
    Th.join();
}

void QueryServer::workerMain(unsigned Worker) {
  ServerTask T;
  bool Stolen = false;
  while (Pool.pop(Worker, T, Stolen)) {
    ServerBatch *B = T.Batch;
    B->Run.runOne(T.Index, Worker, Arenas[Worker], Stolen,
                  B->Cancelled.load(std::memory_order_relaxed));
    // Feed the next request of this batch under its fairness window.
    size_t Next = B->NextToSeed.fetch_add(1, std::memory_order_relaxed);
    if (Next < B->Requests.size())
      Pool.submit({B, Next});
    // The last task to retire completes the batch: collect, fire OnDone,
    // erase. fetch_sub(acq_rel) orders every worker's touches before the
    // completing worker's collection.
    if (B->Outstanding.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      BatchTelemetry Tele;
      std::vector<CheckResponse> Responses = B->Run.take(Tele);
      BatchDone Done = std::move(B->OnDone);
      std::unique_ptr<ServerBatch> Owned;
      {
        std::lock_guard<std::mutex> Lock(Mu);
        auto It = Active.find(B->Id);
        Owned = std::move(It->second);
        Active.erase(It);
      }
      if (Done)
        Done(std::move(Responses), std::move(Tele));
    }
    Pool.finish(Worker);
  }
}

uint64_t QueryServer::submitSpan(std::span<const CheckRequest> Requests,
                                 std::vector<CheckRequest> Owned,
                                 BatchDone OnDone, unsigned FairnessCap) {
  size_t N = Requests.size();
  if (N == 0) {
    // Nothing to schedule: complete inline on the submitting thread.
    {
      std::lock_guard<std::mutex> Lock(Mu);
      ++S.Batches;
    }
    if (OnDone)
      OnDone({}, BatchTelemetry{});
    return 0;
  }
  uint64_t Id;
  ServerBatch *B;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Id = ++NextBatchId;
    auto Batch = std::make_unique<ServerBatch>(
        Id, std::move(Owned), Requests, Opts.Jobs, &Cache, Opts.Store,
        std::move(OnDone), FairnessCap);
    B = Batch.get();
    Active.emplace(Id, std::move(Batch));
    ++S.Batches;
    S.Requests += N;
  }
  // Seed the initial fairness window; each retiring task feeds one more.
  // After the last submit below the batch may complete (and be deleted)
  // at any moment, so B is not touched past this loop.
  size_t Window = B->initialWindow();
  for (size_t I = 0; I < Window; ++I)
    Pool.submit({B, I});
  return Id;
}

uint64_t QueryServer::submitBatch(std::vector<CheckRequest> Requests,
                                  BatchDone OnDone, unsigned FairnessCap) {
  std::vector<CheckRequest> Owned = std::move(Requests);
  std::span<const CheckRequest> Span(Owned);
  return submitSpan(Span, std::move(Owned), std::move(OnDone), FairnessCap);
}

void QueryServer::cancelBatch(uint64_t BatchId) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Active.find(BatchId);
  if (It == Active.end())
    return;
  It->second->Cancelled.store(true, std::memory_order_relaxed);
  ++S.CancelledBatches;
}

void QueryServer::recordBadBatch() {
  std::lock_guard<std::mutex> Lock(Mu);
  ++S.BadBatches;
}

std::vector<CheckResponse>
QueryServer::runBatch(std::span<const CheckRequest> Requests,
                      BatchTelemetry *Telemetry) {
  // The serial entry: submit (borrowing the caller's requests — we block
  // until completion, so the span stays alive) and wait. Verdicts are
  // identical to a one-shot engine run: same BatchRun request evaluation,
  // caches and scheduling verdict-neutral.
  std::mutex DoneMu;
  std::condition_variable DoneCv;
  bool Done = false;
  std::vector<CheckResponse> Out;
  BatchTelemetry T;
  submitSpan(
      Requests, {},
      [&](std::vector<CheckResponse> &&Responses, BatchTelemetry &&Tele) {
        std::lock_guard<std::mutex> Lock(DoneMu);
        Out = std::move(Responses);
        T = std::move(Tele);
        Done = true;
        // Notify while holding the lock: DoneCv lives on the waiting
        // thread's stack, and the waiter can only destroy it after
        // reacquiring DoneMu — which this worker still holds until the
        // notify has fully finished touching the cv.
        DoneCv.notify_one();
      },
      /*FairnessCap=*/0);
  {
    std::unique_lock<std::mutex> Lock(DoneMu);
    DoneCv.wait(Lock, [&] { return Done; });
  }
  if (Telemetry)
    *Telemetry = std::move(T);
  return Out;
}

std::string QueryServer::serveLine(std::string_view Line) {
  std::vector<CheckRequest> Requests;
  std::string Error;
  if (!requestsFromJson(std::string(Line), Requests, &Error)) {
    // Hardening contract: a malformed batch answers with an error
    // document; the session (caches, pool, later batches) lives on.
    recordBadBatch();
    return batchErrorToJson("batch parse error: " + Error);
  }
  BatchTelemetry T;
  std::vector<CheckResponse> Responses = runBatch(Requests, &T);
  return responsesToJson(Responses, Opts.Telemetry ? &T : nullptr);
}

void QueryServer::serveStream(std::istream &In, std::ostream &Out) {
  std::string Line;
  while (std::getline(In, Line)) {
    // Skip blank keep-alive lines rather than answering them with a
    // parse-error document.
    if (Line.find_first_not_of(" \t\r") == std::string::npos)
      continue;
    Out << serveLine(Line);
    Out.flush();
    // A dead sink (client closed its read end) ends the session: keep
    // evaluating corpus-scale batches nobody receives and the server
    // burns CPU until stdin EOF.
    if (!Out)
      break;
  }
}

ServerStats QueryServer::stats() const {
  ServerStats Out;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Out = S;
  }
  Out.Cache = Cache.stats();
  if (Opts.Store) {
    Out.HasStore = true;
    Out.Store = Opts.Store->counters();
  }
  return Out;
}
