//===- PowerModel.cpp - Power with transactions ------------------------------==//

#include "models/PowerModel.h"

using namespace tmw;

const char *PowerModel::name() const {
  return (Cfg.Tfence || Cfg.StrongIsol || Cfg.TxnOrder || Cfg.TxnCancelsRmw ||
          Cfg.TProp1 || Cfg.TProp2 || Cfg.Thb)
             ? "Power+TM"
             : "Power";
}

Relation PowerModel::preservedProgramOrder(const ExecutionAnalysis &A) const {
  unsigned N = A.size();
  EventSet R = A.reads(), W = A.writes();

  Relation Dd = A.addr() | A.data();
  const Relation &PoLoc = A.poLoc();
  // Read-different-writes and detour shapes (same-location refinements).
  Relation Rdw = PoLoc & A.fre().compose(A.rfe());
  Relation Detour = PoLoc & A.coe().compose(A.rfe());
  // ctrl+isync: control dependency with an isync before the target.
  Relation CtrlIsync = A.ctrl() & A.fenceRel(FenceKind::ISync);

  Relation Ii0 = Dd | A.rfi() | Rdw;
  Relation Ci0 = CtrlIsync | Detour;
  Relation Ic0(N);
  Relation Cc0 = Dd | PoLoc | A.ctrl() | A.addr().compose(A.po());

  // Least fixpoint of the mutually recursive ii/ci/ic/cc definitions.
  Relation Ii = Ii0, Ci = Ci0, Ic = Ic0, Cc = Cc0;
  for (;;) {
    Relation NewIi = Ii0 | Ci | Ic.compose(Ci) | Ii.compose(Ii);
    Relation NewCi = Ci0 | Ci.compose(Ii) | Cc.compose(Ci);
    Relation NewIc = Ic0 | Ii | Cc | Ic.compose(Cc) | Ii.compose(Ic);
    Relation NewCc = Cc0 | Ci | Ci.compose(Ic) | Cc.compose(Cc);
    if (NewIi == Ii && NewCi == Ci && NewIc == Ic && NewCc == Cc)
      break;
    Ii = NewIi;
    Ci = NewCi;
    Ic = NewIc;
    Cc = NewCc;
  }

  return (Ii & Relation::cross(R, R, N)) | (Ic & Relation::cross(R, W, N));
}

Relation PowerModel::happensBefore(const ExecutionAnalysis &A) const {
  unsigned N = A.size();
  EventSet R = A.reads(), W = A.writes();

  const Relation &Sync = A.fenceRel(FenceKind::Sync);
  Relation LwSync =
      A.fenceRel(FenceKind::LwSync) - Relation::cross(W, R, N);
  Relation Fence = Sync | LwSync;
  if (Cfg.Tfence)
    Fence |= A.tfence();

  Relation Ihb = preservedProgramOrder(A) | Fence;
  const Relation &Rfe = A.rfe();
  Relation Hb = Rfe.optional().compose(Ihb).compose(Rfe.optional());

  if (Cfg.Thb) {
    // thb = (rfe u ((fre u coe)* ; ihb))* ; (fre u coe)* ; rfe?
    Relation FreCoe = (A.fre() | A.coe()).reflexiveTransitiveClosure();
    Relation Chain =
        (Rfe | FreCoe.compose(Ihb)).reflexiveTransitiveClosure();
    Relation Thb = Chain.compose(FreCoe).compose(Rfe.optional());
    Hb |= weakLift(Thb, A.stxn());
  }
  return Hb;
}

ConsistencyResult PowerModel::check(const ExecutionAnalysis &A) const {
  unsigned N = A.size();
  const Relation &Com = A.com();
  if (!(A.poLoc() | Com).isAcyclic())
    return ConsistencyResult::fail("Coherence");

  if (!(A.rmw() & A.fre().compose(A.coe())).isEmpty())
    return ConsistencyResult::fail("RMWIsol");

  EventSet W = A.writes(), Rd = A.reads();
  const Relation &Sync = A.fenceRel(FenceKind::Sync);
  Relation LwSync =
      A.fenceRel(FenceKind::LwSync) - Relation::cross(W, Rd, N);
  const Relation &Tfence = A.tfence();
  Relation Fence = Sync | LwSync;
  if (Cfg.Tfence)
    Fence |= Tfence;

  Relation Hb = happensBefore(A);
  if (!Hb.isAcyclic())
    return ConsistencyResult::fail("Order");

  Relation HbStar = Hb.reflexiveTransitiveClosure();
  const Relation &Rfe = A.rfe();
  const Relation &Stxn = A.stxn();
  Relation IdW = Relation::identityOn(W, N);

  // prop: how fences constrain the order in which writes propagate.
  Relation Efence = Rfe.optional().compose(Fence).compose(Rfe.optional());
  Relation Prop1 = IdW.compose(Efence).compose(HbStar).compose(IdW);
  Relation SyncLike = Sync;
  if (Cfg.Tfence)
    SyncLike |= Tfence;
  Relation Prop2 = A.external(Com)
                       .reflexiveTransitiveClosure()
                       .compose(Efence.reflexiveTransitiveClosure())
                       .compose(HbStar)
                       .compose(SyncLike)
                       .compose(HbStar);
  Relation Prop = Prop1 | Prop2;
  if (Cfg.TProp1)
    Prop |= Rfe.compose(Stxn).compose(IdW);
  if (Cfg.TProp2)
    Prop |= Stxn.compose(Rfe);

  if (!(A.co() | Prop).isAcyclic())
    return ConsistencyResult::fail("Propagation");

  if (!A.fre().compose(Prop).compose(HbStar).isIrreflexive())
    return ConsistencyResult::fail("Observation");

  if (Cfg.StrongIsol && !A.strongLiftComStxn().isAcyclic())
    return ConsistencyResult::fail("StrongIsol");
  if (Cfg.TxnOrder && !strongLift(Hb, Stxn).isAcyclic())
    return ConsistencyResult::fail("TxnOrder");
  if (Cfg.TxnCancelsRmw && !(A.rmw() & Tfence.transitiveClosure()).isEmpty())
    return ConsistencyResult::fail("TxnCancelsRMW");

  return ConsistencyResult::ok();
}
