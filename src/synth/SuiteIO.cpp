//===- SuiteIO.cpp - Writing synthesised suites to disk -------------------------==//

#include "synth/SuiteIO.h"

#include "litmus/FromExecution.h"
#include "litmus/Printer.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace tmw;

SuiteExport tmw::writeSuite(const std::string &Dir,
                            const std::string &SuiteName,
                            const std::vector<Execution> &Tests,
                            bool Forbidden) {
  SuiteExport Out;
  std::error_code Ec;
  std::filesystem::create_directories(Dir, Ec);
  if (Ec) {
    Out.Error = "cannot create " + Dir + ": " + Ec.message();
    return Out;
  }

  for (unsigned I = 0; I < Tests.size(); ++I) {
    char Name[32];
    snprintf(Name, sizeof(Name), "%03u", I);
    Program P =
        programFromExecution(Tests[I], SuiteName + "-" + Name).Prog;

    std::ostringstream Body;
    Body << "# suite: " << SuiteName << "\n";
    Body << "# verdict: "
         << (Forbidden ? "forbidden by the TM model (conformance: must "
                         "not be observed)"
                       : "allowed (maximally consistent relaxation)")
         << "\n#\n";
    // Paper-style rendering as comments.
    std::istringstream Pretty(printGeneric(P));
    std::string Line;
    while (std::getline(Pretty, Line))
      Body << "# " << Line << "\n";
    Body << printDsl(P);

    std::string Path = Dir + "/" + Name + ".litmus";
    std::ofstream File(Path);
    if (!File) {
      Out.Error = "cannot write " + Path;
      return Out;
    }
    File << Body.str();
    ++Out.FilesWritten;
  }
  return Out;
}
