//===- litmus_tool.cpp - A herd/litmus-style command-line tool ------------------==//
///
/// Reads a litmus test in the DSL (from a file or stdin), enumerates its
/// candidate executions, reports the outcomes allowed by each memory
/// model, and runs the test on the simulated hardware.
///
/// Usage:   ./litmus_tool [--model <spec>]... [--explain] [file.litmus]
/// Example: ./litmus_tool               (runs a built-in SB+txn demo)
///          ./litmus_tool --model power/-TxnOrder --explain sb.litmus
///
/// Flags:
///   --model <spec>   check against this model instead of the default six.
///                    Repeatable. <spec> follows the registry grammar
///                    (ModelRegistry.h): an architecture name optionally
///                    followed by "/"-separated ablation modifiers —
///                    "x86", "power/-TxnOrder", "cpp/+baseline",
///                    "armv8/-tfence/-StrongIsol", ...
///   --explain        for each model that forbids some candidate, print
///                    the failed axioms of the first forbidden candidate
///                    and the witness events (the cycle in the axiom's
///                    term) extracted by MemoryModel::checkAll.
///
/// DSL example:
///   name SB
///   thread 0
///     store x 1
///     load y
///   thread 1
///     store y 1
///     load x
///   post reg 0 r1 0
///   post reg 1 r1 0
///
//===----------------------------------------------------------------------===//

#include "enumerate/Candidates.h"
#include "hw/ImplModel.h"
#include "hw/LitmusRunner.h"
#include "hw/TsoMachine.h"
#include "litmus/Parser.h"
#include "litmus/Printer.h"
#include "models/ModelRegistry.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <vector>

using namespace tmw;

namespace {

const char *DemoTest = R"(name SB+txn-demo
loc ok 1
thread 0
  txbegin
  store x 1
  txend
  load y
thread 1
  txbegin
  store y 1
  txend
  load x
post mem ok 1
post reg 0 r3 0
post reg 1 r3 0
)";

void explainCandidate(const MemoryModel &M, const Candidate &C,
                      size_t Index) {
  ExecutionAnalysis A(C.X);
  CheckReport Report = M.checkAll(A);
  std::printf("  %s forbids candidate #%zu:\n", M.name(), Index);
  for (const AxiomVerdict &V : Report.Verdicts) {
    if (V.Holds)
      continue;
    std::printf("    axiom %-14s violated: not %s; witness events {",
                V.Ax->Name.data(), axiomKindName(V.Ax->Kind));
    bool First = true;
    for (EventId E : V.Witness) {
      std::printf("%s%u", First ? "" : ", ", E);
      First = false;
    }
    std::printf("}\n");
  }
  std::printf("%s", C.X.dump().c_str());
}

} // namespace

int main(int Argc, char **Argv) {
  std::vector<std::string> ModelSpecs;
  bool Explain = false;
  const char *File = nullptr;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--model") == 0 && I + 1 < Argc) {
      ModelSpecs.push_back(Argv[++I]);
    } else if (std::strncmp(Argv[I], "--model=", 8) == 0) {
      ModelSpecs.push_back(Argv[I] + 8);
    } else if (std::strcmp(Argv[I], "--explain") == 0) {
      Explain = true;
    } else {
      File = Argv[I];
    }
  }

  std::string Text;
  if (File) {
    std::ifstream In(File);
    if (!In) {
      std::fprintf(stderr, "error: cannot open %s\n", File);
      return 1;
    }
    std::stringstream Ss;
    Ss << In.rdbuf();
    Text = Ss.str();
  } else {
    std::printf("(no input file: running the built-in demo test)\n\n");
    Text = DemoTest;
  }

  ParseResult R = parseProgram(Text);
  if (!R) {
    std::fprintf(stderr, "parse error: %s\n", R.Error.c_str());
    return 1;
  }
  const Program &P = R.Prog;
  std::printf("%s\n", printGeneric(P).c_str());

  std::vector<Candidate> Cands = enumerateCandidates(P);
  std::printf("%zu candidate executions\n\n", Cands.size());

  // Default: the six architecture models; --model narrows/extends the
  // list to arbitrary registry specs (any model x ablation scenario).
  std::vector<std::unique_ptr<MemoryModel>> Models;
  if (ModelSpecs.empty())
    for (Arch A : ModelRegistry::allArchs())
      Models.push_back(ModelRegistry::make(A));
  else
    for (const std::string &Spec : ModelSpecs) {
      std::string Error;
      std::unique_ptr<MemoryModel> M = ModelRegistry::parse(Spec, &Error);
      if (!M) {
        std::fprintf(stderr, "error: --model %s: %s\n", Spec.c_str(),
                     Error.c_str());
        return 1;
      }
      Models.push_back(std::move(M));
    }

  std::printf("%-24s %9s %9s   postcondition\n", "model", "allowed",
              "outcomes");
  std::vector<const Candidate *> FirstForbidden(Models.size(), nullptr);
  std::vector<size_t> FirstForbiddenIndex(Models.size(), 0);
  for (size_t MI = 0; MI < Models.size(); ++MI) {
    const MemoryModel &M = *Models[MI];
    unsigned Allowed = 0;
    bool Post = false;
    for (size_t CI = 0; CI < Cands.size(); ++CI) {
      const Candidate &C = Cands[CI];
      if (M.consistent(C.X)) {
        ++Allowed;
        Post |= C.O.satisfies(P);
      } else if (!FirstForbidden[MI]) {
        FirstForbidden[MI] = &C;
        FirstForbiddenIndex[MI] = CI;
      }
    }
    std::printf("%-24s %9u %9zu   %s\n",
                ModelRegistry::print(M).c_str(), Allowed, Cands.size(),
                Post ? "REACHABLE" : "unreachable");
  }

  if (Explain) {
    std::printf("\nPer-axiom diagnostics (--explain):\n");
    for (size_t MI = 0; MI < Models.size(); ++MI) {
      if (!FirstForbidden[MI]) {
        std::printf("  %s allows every candidate\n", Models[MI]->name());
        continue;
      }
      explainCandidate(*Models[MI], *FirstForbidden[MI],
                       FirstForbiddenIndex[MI]);
    }
  }

  std::printf("\nSimulated hardware campaigns:\n");
  {
    TsoMachine M(P);
    RunReport Rep = runOnTso(P, 1000000);
    std::printf("  x86 TSX machine   : postcondition %s (%zu distinct "
                "outcomes)\n",
                Rep.Seen ? "OBSERVED" : "never observed",
                Rep.Histogram.size());
    for (const auto &[O, N] : Rep.Histogram)
      std::printf("    %9llu  %s\n", static_cast<unsigned long long>(N),
                  O.str(P).c_str());
  }
  {
    ImplModel P8 = ImplModel::power8();
    RunReport Rep = runOnImpl(P, P8, 1000000);
    std::printf("  POWER8 (simulated): postcondition %s\n",
                Rep.Seen ? "OBSERVED" : "never observed");
  }
  return 0;
}
