//===- Prefix.h - Resumable prefixes of the base-execution DFS --*- C++ -*-==//
///
/// \file
/// The unit of parallel decomposition for the canonical base-execution
/// search: a complete skeleton plus the first K event-labelling
/// decisions. `ExecutionEnumerator` expands and resumes prefixes
/// (Enumerator.h); `WorkQueue` schedules them (WorkQueue.h).
///
//===----------------------------------------------------------------------===//

#ifndef TMW_ENUMERATE_PREFIX_H
#define TMW_ENUMERATE_PREFIX_H

#include "execution/Event.h"

#include <vector>

namespace tmw {

/// A resumable prefix of the canonical base-execution DFS: the complete
/// skeleton plus the labels already fixed for the first `Labels.size()`
/// events. `Labels.size() == sum(Sizes)` denotes a fully labelled base
/// family (only the rmw/dep/rf/co stages remain below it).
struct BasePrefix {
  /// Thread sizes, non-increasing, summing to the enumerator's event count.
  std::vector<unsigned> Sizes;
  /// Labels of events `0 .. Labels.size()-1` in thread-major id order.
  /// Only `Kind`, `Loc`, `Order` and `Fence` are meaningful; the thread is
  /// implied by the skeleton.
  std::vector<Event> Labels;
};

} // namespace tmw

#endif // TMW_ENUMERATE_PREFIX_H
