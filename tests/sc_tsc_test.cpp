//===- sc_tsc_test.cpp - SC and Transactional SC (Fig. 4) ---------------------==//

#include "TestGraphs.h"
#include "models/ScModel.h"

#include <gtest/gtest.h>

using namespace tmw;

namespace {

TEST(ScTest, ForbidsStoreBuffering) {
  ScModel Sc;
  ConsistencyResult R = Sc.check(shapes::storeBuffering());
  EXPECT_FALSE(R.Consistent);
  EXPECT_EQ(R.FailedAxiom, "Order");
}

TEST(ScTest, ForbidsMessagePassingStaleRead) {
  ScModel Sc;
  EXPECT_FALSE(Sc.consistent(shapes::messagePassing()));
}

TEST(ScTest, ForbidsLoadBuffering) {
  ScModel Sc;
  EXPECT_FALSE(Sc.consistent(shapes::loadBuffering(false)));
}

TEST(ScTest, ForbidsIriw) {
  ScModel Sc;
  EXPECT_FALSE(Sc.consistent(shapes::iriw()));
}

TEST(ScTest, AllowsInterleavings) {
  // T0: Wx=1. T1: Rx(1) — a plain SC interleaving.
  ExecutionBuilder B;
  EventId W = B.write(0, 0, MemOrder::NonAtomic, 1);
  EventId R = B.read(1, 0);
  B.rf(W, R);
  ScModel Sc;
  EXPECT_TRUE(Sc.consistent(B.build()));
}

TEST(ScTest, AllowsSequentialReadsOfDistinctWrites) {
  ExecutionBuilder B;
  EventId W1 = B.write(0, 0, MemOrder::NonAtomic, 1);
  EventId W2 = B.write(0, 0, MemOrder::NonAtomic, 2);
  EventId R1 = B.read(1, 0);
  EventId R2 = B.read(1, 0);
  B.rf(W1, R1);
  B.rf(W2, R2);
  ScModel Sc;
  EXPECT_TRUE(Sc.consistent(B.build()));
}

TEST(ScTest, ForbidsCoherenceViolation) {
  // Reads observing two writes in the order opposite to co.
  ExecutionBuilder B;
  EventId W1 = B.write(0, 0, MemOrder::NonAtomic, 1);
  EventId W2 = B.write(0, 0, MemOrder::NonAtomic, 2);
  EventId R1 = B.read(1, 0);
  EventId R2 = B.read(1, 0);
  B.rf(W2, R1);
  B.rf(W1, R2);
  ScModel Sc;
  EXPECT_FALSE(Sc.consistent(B.build()));
}

TEST(TscTest, AgreesWithScOnTransactionFreeExecutions) {
  ScModel Sc;
  TscModel Tsc;
  for (const Execution &X :
       {shapes::storeBuffering(), shapes::messagePassing(),
        shapes::loadBuffering(false), shapes::iriw()}) {
    EXPECT_EQ(Sc.consistent(X), Tsc.consistent(X));
  }
}

TEST(TscTest, ForbidsNonTransactionalInterferenceScAllows) {
  // T0: txn { Wx=1; Wy=1 }.  T1: Ry(1); Rx(0).
  // SC-consistent (interleaving W W R R with the read of x stale is NOT
  // SC... choose instead: T1 reads y=1 then x=0 is an SC violation, so use
  // the containment shape from Fig. 3(d) tested in isolation_test. Here:
  // T1's read lands "inside" the transaction.
  ExecutionBuilder B;
  EventId Wx = B.write(0, 0, MemOrder::NonAtomic, 1);
  EventId Wy = B.write(0, 1, MemOrder::NonAtomic, 1);
  EventId Ry = B.read(1, 1);
  EventId Rx = B.read(1, 0); // reads initial x: lands between Wx and Wy
  B.rf(Wy, Ry);
  B.txn({Wx, Wy});
  (void)Rx;
  Execution X = B.build();

  ScModel Sc;
  // Not SC: Wx ; Wy ; Ry requires x to be visible already.
  EXPECT_FALSE(Sc.consistent(X));
  TscModel Tsc;
  EXPECT_FALSE(Tsc.consistent(X));
}

TEST(TscTest, TransactionsSerialiseEvenWhenUnobservedBetween) {
  // Two transactions racing on two locations, observing each other in
  // incompatible orders: forbidden by TxnOrder, allowed by plain SC.
  ExecutionBuilder B;
  EventId Rx = B.read(0, 0);  // reads initial x
  EventId Wy = B.write(0, 1, MemOrder::NonAtomic, 1);
  EventId Ry = B.read(1, 1);  // reads initial y
  EventId Wx = B.write(1, 0, MemOrder::NonAtomic, 1);
  B.txn({Rx, Wy});
  B.txn({Ry, Wx});
  Execution X = B.build();

  // SC alone allows it: Rx Ry Wy Wx is a valid interleaving.
  ScModel Sc;
  EXPECT_TRUE(Sc.consistent(X));
  // TSC forbids it: each transaction must precede the other.
  TscModel Tsc;
  ConsistencyResult R = Tsc.check(X);
  EXPECT_FALSE(R.Consistent);
  EXPECT_EQ(R.FailedAxiom, "TxnOrder");
}

TEST(TscTest, AllowsSerialisedTransactions) {
  ExecutionBuilder B;
  EventId Wx = B.write(0, 0, MemOrder::NonAtomic, 1);
  EventId Rx = B.read(1, 0);
  EventId Wy = B.write(1, 1, MemOrder::NonAtomic, 1);
  B.rf(Wx, Rx);
  B.txn({Wx});
  B.txn({Rx, Wy});
  TscModel Tsc;
  EXPECT_TRUE(Tsc.consistent(B.build()));
}

} // namespace
