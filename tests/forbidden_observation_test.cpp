//===- forbidden_observation_test.cpp - Footnote-2 verdict refinement ---------==//
///
/// With three or more writes to one location, a final-state postcondition
/// cannot pin the full coherence order (the paper's footnote 2), so a
/// satisfying outcome may have a benign explanation. These tests pin the
/// behaviour of `observedForbiddenBehaviour`, which only reports a
/// soundness violation when no model-consistent candidate explains the
/// observation.
///
//===----------------------------------------------------------------------===//

#include "hw/LitmusRunner.h"

#include "execution/Builder.h"
#include "hw/TsoMachine.h"
#include "litmus/FromExecution.h"
#include "models/ScModel.h"
#include "models/X86Model.h"

#include <gtest/gtest.h>

using namespace tmw;

namespace {

/// The ambiguous three-write test from the conformance run: a
/// transaction writing x twice with an external write in between.
Program ambiguousTest() {
  ExecutionBuilder B;
  EventId W1 = B.write(0, 0, MemOrder::NonAtomic, 1);
  EventId W2 = B.write(0, 0, MemOrder::NonAtomic, 3);
  EventId WExt = B.write(1, 0, MemOrder::NonAtomic, 2);
  B.co(W1, WExt);
  B.co(WExt, W2);
  B.txn({W1, W2});
  return programFromExecution(B.build(), "3writes").Prog;
}

TEST(ForbiddenObservationTest, BenignExplanationSuppressesVerdict) {
  Program P = ambiguousTest();
  X86Model Tm;
  // The TSO machine satisfies the postcondition via the benign coherence
  // order (external write first), so the raw verdict is "seen"...
  TsoMachine M(P);
  EXPECT_TRUE(M.postconditionObservable());
  // ...but every satisfying outcome has a consistent explanation, so no
  // forbidden behaviour was observed.
  EXPECT_FALSE(observedForbiddenBehaviour(P, Tm, M.reachableOutcomes()));
}

TEST(ForbiddenObservationTest, UnexplainableOutcomeIsReported) {
  // SB with its weak outcome: under SC no candidate explains it, so an
  // SC-specification run that *did* observe it would be a violation.
  ExecutionBuilder B;
  B.write(0, 0, MemOrder::NonAtomic, 1);
  B.read(0, 1);
  B.write(1, 1, MemOrder::NonAtomic, 1);
  B.read(1, 0);
  Program P = programFromExecution(B.build(), "sb").Prog;

  TsoMachine M(P);
  std::vector<Outcome> Observed = M.reachableOutcomes();
  ScModel Sc;
  // The TSO machine exhibits SB; SC cannot explain it.
  EXPECT_TRUE(observedForbiddenBehaviour(P, Sc, Observed));
  // The x86 model explains everything the machine does.
  X86Model X86;
  EXPECT_FALSE(observedForbiddenBehaviour(P, X86, Observed));
}

TEST(ForbiddenObservationTest, NonSatisfyingOutcomesIgnored) {
  Program P = ambiguousTest();
  X86Model Tm;
  // An outcome that fails the postcondition is never a violation, even
  // if it has no consistent explanation.
  Outcome Bogus;
  Bogus.MemValues = {99, 0};
  EXPECT_FALSE(observedForbiddenBehaviour(P, Tm, {Bogus}));
}

TEST(ForbiddenObservationTest, OutcomesOfExtractsHistogram) {
  Program P = ambiguousTest();
  RunReport R = runOnTso(P, 100);
  std::vector<Outcome> Outs = outcomesOf(R);
  EXPECT_EQ(Outs.size(), R.Histogram.size());
}

} // namespace
