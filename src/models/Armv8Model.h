//===- Armv8Model.h - ARMv8 with proposed transactions ----------*- C++ -*-==//
///
/// \file
/// The ARMv8 memory model of Fig. 8: the official multicopy-atomic
/// axiomatic model (Deacon's aarch64.cat as simplified by Pulte et al.,
/// POPL 2018) with the paper's unofficial TM extension — implicit
/// transaction fences, strong isolation, TxnOrder over the ordered-before
/// relation, and TxnCancelsRMW for exclusives straddling a transaction
/// boundary.
///
/// Axioms: Coherence, tfence (TM modifier), Order, RMWIsol,
///         StrongIsol (TM), TxnOrder (TM), TxnCancelsRMW (TM).
///
//===----------------------------------------------------------------------===//

#ifndef TMW_MODELS_ARMV8MODEL_H
#define TMW_MODELS_ARMV8MODEL_H

#include "models/MemoryModel.h"

namespace tmw {

/// ARMv8 (Fig. 8). Default configuration enables all TM axioms.
class Armv8Model : public MemoryModel {
public:
  /// Thin shim lowering onto the named-axiom mask.
  struct Config {
    bool Tfence = true;
    bool StrongIsol = true;
    bool TxnOrder = true;
    /// Exclusives fail across a transactional/non-transactional change.
    bool TxnCancelsRmw = true;

    static Config baseline() { return {false, false, false, false}; }
  };

  Armv8Model() = default;
  explicit Armv8Model(Config C);

  const char *name() const override {
    return anyTmEnabled() ? "ARMv8+TM" : "ARMv8";
  }
  Arch arch() const override { return Arch::Armv8; }
  AxiomList axioms() const override;

  /// The ordered-before relation (ob) of Fig. 8 under this configuration.
  Relation orderedBefore(const ExecutionAnalysis &A) const;

  Config config() const;
};

} // namespace tmw

#endif // TMW_MODELS_ARMV8MODEL_H
