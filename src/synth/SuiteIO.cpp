//===- SuiteIO.cpp - Writing synthesised suites to disk -------------------------==//

#include "synth/SuiteIO.h"

#include "litmus/FromExecution.h"
#include "litmus/Printer.h"
#include "query/Json.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace tmw;

namespace {

/// `NNN`-style test name within a suite.
std::string testName(const std::string &SuiteName, unsigned I) {
  char Suffix[32];
  std::snprintf(Suffix, sizeof(Suffix), "%03u", I);
  return SuiteName + "-" + Suffix;
}

} // namespace

SuiteExport tmw::writeSuite(const std::string &Dir,
                            const std::string &SuiteName,
                            const std::vector<Execution> &Tests,
                            bool Forbidden) {
  SuiteExport Out;
  std::error_code Ec;
  std::filesystem::create_directories(Dir, Ec);
  if (Ec) {
    Out.Error = "cannot create " + Dir + ": " + Ec.message();
    return Out;
  }

  for (unsigned I = 0; I < Tests.size(); ++I) {
    char Name[32];
    snprintf(Name, sizeof(Name), "%03u", I);
    Program P = programFromExecution(Tests[I], testName(SuiteName, I)).Prog;

    std::ostringstream Body;
    Body << "# suite: " << SuiteName << "\n";
    Body << "# verdict: "
         << (Forbidden ? "forbidden by the TM model (conformance: must "
                         "not be observed)"
                       : "allowed (maximally consistent relaxation)")
         << "\n#\n";
    // Paper-style rendering as comments.
    std::istringstream Pretty(printGeneric(P));
    std::string Line;
    while (std::getline(Pretty, Line))
      Body << "# " << Line << "\n";
    Body << printDsl(P);

    std::string Path = Dir + "/" + Name + ".litmus";
    std::ofstream File(Path);
    if (!File) {
      Out.Error = "cannot write " + Path;
      return Out;
    }
    File << Body.str();
    ++Out.FilesWritten;
  }
  return Out;
}

std::string tmw::suiteToJson(const std::string &SuiteName,
                             const std::vector<Execution> &Tests,
                             bool Forbidden) {
  std::string Json = "{\"schema\": \"tmw-suite-v1\", \"suite\": ";
  jsonAppendString(Json, SuiteName);
  Json += ", \"verdict\": ";
  Json += Forbidden ? "\"forbidden\"" : "\"allowed\"";
  Json += ", \"tests\": [\n";
  for (unsigned I = 0; I < Tests.size(); ++I) {
    std::string Name = testName(SuiteName, I);
    Program P = programFromExecution(Tests[I], Name).Prog;
    Json += "  {\"index\": " + std::to_string(I) + ", \"name\": ";
    jsonAppendString(Json, Name);
    Json += ", \"dsl\": ";
    jsonAppendString(Json, printDsl(P));
    Json += '}';
    if (I + 1 < Tests.size())
      Json += ',';
    Json += '\n';
  }
  Json += "]}\n";
  return Json;
}

SuiteExport tmw::writeSuiteJson(const std::string &Path,
                                const std::string &SuiteName,
                                const std::vector<Execution> &Tests,
                                bool Forbidden) {
  SuiteExport Out;
  std::ofstream File(Path);
  if (!File) {
    Out.Error = "cannot write " + Path;
    return Out;
  }
  File << suiteToJson(SuiteName, Tests, Forbidden);
  Out.FilesWritten = 1;
  return Out;
}
