//===- Event.h - Runtime memory events --------------------------*- C++ -*-==//
///
/// \file
/// Events of an execution graph (§2.1). Events are partitioned into reads,
/// writes and fences; lock-elision checking (§8.3) adds four method-call
/// kinds (L, U, Lt, Ut). Architecture- and language-level annotations
/// (acquire/release/SC, atomicity, fence flavours) are carried on the event.
///
//===----------------------------------------------------------------------===//

#ifndef TMW_EXECUTION_EVENT_H
#define TMW_EXECUTION_EVENT_H

#include <cstdint>

namespace tmw {

/// The kind of a runtime event.
enum class EventKind : uint8_t {
  Read,
  Write,
  Fence,
  /// lock() implemented by really acquiring the mutex (L in §8.3).
  Lock,
  /// unlock() of a really-acquired mutex (U in §8.3).
  Unlock,
  /// lock() that will be transactionalised by lock elision (Lt in §8.3).
  TxLock,
  /// unlock() of an elided critical region (Ut in §8.3).
  TxUnlock,
};

/// Architecture-level fence flavours. `None` marks non-fence events.
enum class FenceKind : uint8_t {
  None,
  /// x86 MFENCE.
  MFence,
  /// Power sync (hwsync).
  Sync,
  /// Power lwsync.
  LwSync,
  /// Power isync.
  ISync,
  /// ARMv8 DMB (full).
  Dmb,
  /// ARMv8 DMB LD.
  DmbLd,
  /// ARMv8 DMB ST.
  DmbSt,
  /// ARMv8 ISB.
  Isb,
  /// C++ atomic_thread_fence (consistency mode in `MemOrder`).
  CppFence,
};

/// Consistency modes. For C++ events this is the std::memory_order; for
/// hardware events, `Acquire` marks acquire loads (ARMv8 LDAR / LDAXR) and
/// `Release` marks release stores (ARMv8 STLR). `NonAtomic` marks plain
/// accesses.
enum class MemOrder : uint8_t {
  NonAtomic,
  Relaxed,
  Acquire,
  Release,
  AcqRel,
  SeqCst,
};

/// Returns true when \p MO includes acquire semantics.
inline bool isAcquireOrder(MemOrder MO) {
  return MO == MemOrder::Acquire || MO == MemOrder::AcqRel ||
         MO == MemOrder::SeqCst;
}

/// Returns true when \p MO includes release semantics.
inline bool isReleaseOrder(MemOrder MO) {
  return MO == MemOrder::Release || MO == MemOrder::AcqRel ||
         MO == MemOrder::SeqCst;
}

/// Location identifier; -1 for events that do not access memory.
using LocId = int;

/// A runtime memory event.
struct Event {
  EventKind Kind = EventKind::Read;
  /// Owning thread, numbered densely from zero.
  unsigned Thread = 0;
  /// Accessed location, or -1 for fences and lock method calls.
  LocId Loc = -1;
  /// Consistency mode (see `MemOrder`).
  MemOrder Order = MemOrder::NonAtomic;
  /// Fence flavour; `None` unless `Kind == Fence`.
  FenceKind Fence = FenceKind::None;
  /// Value written, for writes. Assigned 1-based unique values by the
  /// litmus-test generator when left at 0.
  int WrittenValue = 0;

  bool isRead() const { return Kind == EventKind::Read; }
  bool isWrite() const { return Kind == EventKind::Write; }
  bool isFence() const { return Kind == EventKind::Fence; }
  bool isMemoryAccess() const { return isRead() || isWrite(); }
  bool isLockCall() const {
    return Kind == EventKind::Lock || Kind == EventKind::Unlock ||
           Kind == EventKind::TxLock || Kind == EventKind::TxUnlock;
  }
  /// True for C++ events of atomic operations (Ato in Fig. 9).
  bool isAtomic() const { return Order != MemOrder::NonAtomic; }
  bool isAcquire() const { return isAcquireOrder(Order); }
  bool isRelease() const { return isReleaseOrder(Order); }
  bool isSeqCst() const { return Order == MemOrder::SeqCst; }
};

/// Short human-readable tag ("R", "W", "F:sync", ...).
const char *eventKindName(EventKind K);
/// Fence mnemonic ("mfence", "sync", ...).
const char *fenceKindName(FenceKind F);
/// Memory-order suffix ("na", "rlx", "acq", ...).
const char *memOrderName(MemOrder MO);

} // namespace tmw

#endif // TMW_EXECUTION_EVENT_H
