//===- lint_test.cpp - Litmus-program lint + static facts tests ---------------==//
///
/// The static analyzer (lint/Lint.h) pinned three ways:
///
///  * diagnostics — every lint rule fires on a minimal trigger program,
///    with the finding's code, severity, and (for DSL-parsed programs)
///    1-based source line pinned exactly; and the built-in corpus lints
///    clean, so the CI gate (`tmw_lint --corpus`) is meaningful;
///
///  * facts — `computeFacts` over-approximates soundly: each vocabulary
///    class appears exactly when the triggering construct does, and
///    `executionVocabulary` agrees on concrete executions (every
///    enumerated candidate of a program speaks a subset of the program's
///    vocabulary);
///
///  * specialization — `EvalPlan::specialize` is verdict-neutral (planned
///    runs with specialization on and off are byte-identical across jobs
///    counts) while actually discharging obligations on txn-free
///    programs, and per-execution specializations match direct model
///    evaluation over an enumerated sweep.
///
//===----------------------------------------------------------------------===//

#include "TestGraphs.h"
#include "enumerate/Candidates.h"
#include "enumerate/Enumerator.h"
#include "lint/Lint.h"
#include "lint/LintIO.h"
#include "litmus/Library.h"
#include "litmus/Parser.h"
#include "models/EvalPlan.h"
#include "models/ModelRegistry.h"
#include "query/Json.h"
#include "query/QueryEngine.h"
#include "query/QueryIO.h"

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>

using namespace tmw;

namespace {

Program parsed(const char *Src) {
  ParseResult R = parseProgram(Src);
  EXPECT_TRUE(static_cast<bool>(R)) << R.Error;
  return R.Prog;
}

/// The first finding with \p Code (a copy: `lintProgram` returns by
/// value, so handing back a pointer into the argument would dangle).
std::optional<LintFinding> findingWithCode(const LintReport &R,
                                           std::string_view Code) {
  for (const LintFinding &F : R.Findings)
    if (F.Code == Code)
      return F;
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Diagnostics: one minimal trigger per rule, lines pinned via SrcLines.
// ---------------------------------------------------------------------------

TEST(Lint_, CleanProgramHasNoFindings) {
  Program P = parsed("name SB\n"
                     "loc x 0\n"
                     "loc y 0\n"
                     "thread 0\n"
                     "  store x 1\n"
                     "  load y\n"
                     "thread 1\n"
                     "  store y 1\n"
                     "  load x\n"
                     "post reg 0 r1 0\n"
                     "post reg 1 r1 0\n");
  LintReport R = lintProgram(P);
  EXPECT_TRUE(R.Findings.empty());
  EXPECT_FALSE(R.hasErrors());
}

TEST(Lint_, UnusedLocationWarnsAtProgramLevel) {
  Program P = parsed("loc x 0\n"
                     "loc ghost 0\n"
                     "thread 0\n"
                     "  load x\n");
  std::optional<LintFinding> F =
          findingWithCode(lintProgram(P), "unused-location");
  ASSERT_TRUE(F.has_value());
  EXPECT_EQ(F->Severity, LintSeverity::Warning);
  EXPECT_NE(F->Message.find("'ghost'"), std::string::npos);
  EXPECT_EQ(F->Thread, -1);
  EXPECT_EQ(F->Line, 0u);
}

TEST(Lint_, UninitializedLoadOnlyLocationWarns) {
  // x is loaded, never stored, and `loc x 0` records no initial value
  // (only non-zero initials are kept) — but an explicit non-zero initial
  // silences the rule.
  Program P = parsed("thread 0\n  load x\npost reg 0 r0 0\n");
  std::optional<LintFinding> F =
          findingWithCode(lintProgram(P), "uninitialized-location");
  ASSERT_TRUE(F.has_value());
  EXPECT_EQ(F->Severity, LintSeverity::Warning);

  Program Q = parsed("loc x 7\nthread 0\n  load x\npost reg 0 r0 7\n");
  EXPECT_FALSE(
      findingWithCode(lintProgram(Q), "uninitialized-location").has_value());
}

TEST(Lint_, EventAndTxnCapsAreErrors) {
  // kMaxEvents + 1 loads: enumeration would silently yield nothing.
  Program P;
  P.LocNames = {"x"};
  P.Threads.emplace_back();
  for (unsigned I = 0; I <= kMaxEvents; ++I) {
    Instruction L;
    L.K = Instruction::Kind::Load;
    L.Loc = 0;
    P.Threads[0].push_back(L);
  }
  std::optional<LintFinding> F =
     findingWithCode(lintProgram(P), "too-many-events");
  ASSERT_TRUE(F.has_value());
  EXPECT_EQ(F->Severity, LintSeverity::Error);
  EXPECT_EQ(F->Line, 0u); // programmatic build: no source lines

  // kMaxTxns + 1 balanced transactions (delimiters produce no events, so
  // only the txn cap trips).
  Program Q;
  Q.LocNames = {"x"};
  Q.Threads.emplace_back();
  for (unsigned I = 0; I <= kMaxTxns; ++I) {
    Instruction B, E;
    B.K = Instruction::Kind::TxBegin;
    E.K = Instruction::Kind::TxEnd;
    Q.Threads[0].push_back(B);
    Q.Threads[0].push_back(E);
  }
  EXPECT_TRUE(findingWithCode(lintProgram(Q), "too-many-txns").has_value());
  EXPECT_FALSE(findingWithCode(lintProgram(Q), "too-many-events").has_value());
}

TEST(Lint_, UnbalancedTxnVariantsPinLines) {
  // Nested txbegin (line 4), and the still-open outer txn (line 3).
  Program P = parsed("loc x 0\n"       // 1
                     "thread 0\n"      // 2
                     "  txbegin\n"     // 3
                     "  txbegin\n"     // 4
                     "  store x 1\n"   // 5
                     "  txend\n");     // 6
  LintReport R = lintProgram(P);
  std::optional<LintFinding> Nested =
     findingWithCode(R, "unbalanced-txn");
  ASSERT_TRUE(Nested.has_value());
  EXPECT_EQ(Nested->Severity, LintSeverity::Error);
  EXPECT_EQ(Nested->Line, 4u);
  EXPECT_NE(Nested->Message.find("nested txbegin"), std::string::npos);

  Program Q = parsed("loc x 0\nthread 0\n  store x 1\n  txend\n");
  std::optional<LintFinding> Stray =
     findingWithCode(lintProgram(Q), "unbalanced-txn");
  ASSERT_TRUE(Stray.has_value());
  EXPECT_EQ(Stray->Line, 4u);
  EXPECT_NE(Stray->Message.find("without a matching txbegin"),
            std::string::npos);

  Program S = parsed("loc x 0\nthread 0\n  txbegin\n  store x 1\n");
  std::optional<LintFinding> Open =
     findingWithCode(lintProgram(S), "unbalanced-txn");
  ASSERT_TRUE(Open.has_value());
  EXPECT_EQ(Open->Line, 3u); // reported at the unclosed txbegin
  EXPECT_NE(Open->Message.find("without a matching txend"),
            std::string::npos);
}

TEST(Lint_, UnbalancedAndMismatchedLockRegions) {
  Program P = parsed("loc x 0\nthread 0\n  lock\n  store x 1\n  txunlock\n");
  std::optional<LintFinding> Mix =
     findingWithCode(lintProgram(P), "unbalanced-lock");
  ASSERT_TRUE(Mix.has_value());
  EXPECT_EQ(Mix->Line, 5u);
  EXPECT_NE(Mix->Message.find("closed by txunlock"), std::string::npos);

  Program Q = parsed("loc x 0\nthread 0\n  unlock\n  load x\n");
  ASSERT_TRUE(findingWithCode(lintProgram(Q), "unbalanced-lock").has_value());

  Program S = parsed("loc x 0\nthread 0\n  txlock\n  load x\n");
  std::optional<LintFinding> Open =
     findingWithCode(lintProgram(S), "unbalanced-lock");
  ASSERT_TRUE(Open.has_value());
  EXPECT_EQ(Open->Line, 3u);
  EXPECT_NE(Open->Message.find("txlock without a matching unlock"),
            std::string::npos);

  Program N = parsed("loc x 0\nthread 0\n  lock\n  lock\n  unlock\n");
  std::optional<LintFinding> Nest =
     findingWithCode(lintProgram(N), "unbalanced-lock");
  ASSERT_TRUE(Nest.has_value());
  EXPECT_EQ(Nest->Line, 4u);
  EXPECT_NE(Nest->Message.find("nested lock call"), std::string::npos);
}

TEST(Lint_, RmwPairRules) {
  // Well-paired RMW is clean.
  Program Ok = parsed("loc x 0\n"
                      "thread 0\n"
                      "  load x rmw:1\n"
                      "  store x 1 rmw:0\n");
  EXPECT_FALSE(findingWithCode(lintProgram(Ok), "bad-rmw-pair").has_value());

  // Partner out of range (line 3).
  Program Oor = parsed("loc x 0\nthread 0\n  load x rmw:5\n");
  std::optional<LintFinding> F =
     findingWithCode(lintProgram(Oor), "bad-rmw-pair");
  ASSERT_TRUE(F.has_value());
  EXPECT_EQ(F->Line, 3u);
  EXPECT_NE(F->Message.find("out of range"), std::string::npos);

  // Partner is not the opposite kind.
  Program Kind = parsed("loc x 0\nthread 0\n  load x rmw:1\n  load x\n");
  ASSERT_TRUE(
      findingWithCode(lintProgram(Kind), "bad-rmw-pair").has_value());

  // Partner does not point back.
  Program Back = parsed("loc x 0\nthread 0\n"
                        "  load x rmw:1\n  store x 1\n");
  std::optional<LintFinding> B =
     findingWithCode(lintProgram(Back), "bad-rmw-pair");
  ASSERT_TRUE(B.has_value());
  EXPECT_NE(B->Message.find("point back"), std::string::npos);

  // Pair across two locations.
  Program Loc = parsed("loc x 0\nloc y 0\nthread 0\n"
                       "  load x rmw:1\n  store y 1 rmw:0\n"
                       "post mem y 1\n");
  std::optional<LintFinding> L =
     findingWithCode(lintProgram(Loc), "bad-rmw-pair");
  ASSERT_TRUE(L.has_value());
  EXPECT_NE(L->Message.find("two different locations"), std::string::npos);

  // rmw on a fence is neither load nor store.
  Program Fence = parsed("loc x 0\nthread 0\n  fence mfence rmw:0\n  load x\n");
  std::optional<LintFinding> Fn =
     findingWithCode(lintProgram(Fence), "bad-rmw-pair");
  ASSERT_TRUE(Fn.has_value());
  EXPECT_NE(Fn->Message.find("neither a load nor a store"),
            std::string::npos);
}

TEST(Lint_, DependencyRules) {
  // Forward reference: r1 is not an earlier instruction at line 3.
  Program Fwd = parsed("loc x 0\nthread 0\n  load x addr:1\n  load x\n");
  std::optional<LintFinding> F =
     findingWithCode(lintProgram(Fwd), "bad-dependency");
  ASSERT_TRUE(F.has_value());
  EXPECT_EQ(F->Line, 3u);
  EXPECT_NE(F->Message.find("not an earlier instruction"), std::string::npos);

  // Dependency on a store: stores define no register.
  Program NonLoad =
      parsed("loc x 0\nloc y 0\nthread 0\n  store x 1\n  load y data:0\n");
  std::optional<LintFinding> N =
          findingWithCode(lintProgram(NonLoad), "bad-dependency");
  ASSERT_TRUE(N.has_value());
  EXPECT_EQ(N->Line, 5u);
  EXPECT_NE(N->Message.find("only loads define registers"),
            std::string::npos);

  // A legal ctrl dependency is clean.
  Program Ok = parsed("loc x 0\nloc y 0\nthread 0\n"
                      "  load x\n  store y 1 ctrl:0\n"
                      "post mem y 1\n");
  EXPECT_FALSE(findingWithCode(lintProgram(Ok), "bad-dependency").has_value());
}

TEST(Lint_, PostconditionRules) {
  // post reg names a thread that does not exist.
  Program Thr = parsed("loc x 0\nthread 0\n  load x\npost reg 3 r0 0\n");
  std::optional<LintFinding> T =
     findingWithCode(lintProgram(Thr), "bad-postcondition");
  ASSERT_TRUE(T.has_value());
  EXPECT_NE(T->Message.find("nonexistent thread 3"), std::string::npos);

  // post reg names a store: registers are load instruction indices, so
  // the assertion can never be satisfied.
  Program St = parsed("loc x 0\nthread 0\n  store x 1\npost reg 0 r0 1\n");
  std::optional<LintFinding> S =
     findingWithCode(lintProgram(St), "bad-postcondition");
  ASSERT_TRUE(S.has_value());
  EXPECT_EQ(S->Line, 3u); // pinned to the named instruction
  EXPECT_NE(S->Message.find("does not name a load"), std::string::npos);

  // post mem with an out-of-range location id (programmatic only: the
  // parser interns names, so a DSL post mem always resolves).
  Program Mem = parsed("loc x 0\nthread 0\n  store x 1\npost mem x 1\n");
  Mem.MemPost.push_back({LocId(99), 0});
  std::optional<LintFinding> M =
     findingWithCode(lintProgram(Mem), "bad-postcondition");
  ASSERT_TRUE(M.has_value());
  EXPECT_NE(M->Message.find("nonexistent location id 99"), std::string::npos);
}

TEST(Lint_, CorpusLintsClean) {
  // The CI gate's substance: every built-in corpus entry has zero
  // findings — warnings included.
  for (const CorpusEntry &E : sharedCorpus()) {
    LintReport R = lintProgram(E.Prog);
    EXPECT_TRUE(R.Findings.empty())
        << E.Name << ": " << (R.Findings.empty()
                                  ? ""
                                  : R.Findings.front().Message);
  }
}

// ---------------------------------------------------------------------------
// Facts and vocabulary.
// ---------------------------------------------------------------------------

TEST(Facts_, BaselineProgramSpeaksOnlyBase) {
  Program P = parsed("loc x 0\nloc y 0\n"
                     "thread 0\n  store x 1\n  load y\n"
                     "thread 1\n  store y 1\n  load x\n"
                     "post reg 0 r1 0\npost reg 1 r1 0\n");
  ProgramFacts F = computeFacts(P);
  EXPECT_TRUE(F.TxnFree);
  EXPECT_TRUE(F.RmwFree);
  EXPECT_TRUE(F.LockRegionFree);
  EXPECT_FALSE(F.SingleLocation);
  EXPECT_FALSE(F.AtomicOnly); // default accesses are non-atomic
  EXPECT_EQ(F.FenceKinds, 0u);
  EXPECT_EQ(F.Vocabulary, vocab::Base);
}

TEST(Facts_, EachConstructSetsItsClass) {
  ProgramFacts Txn = computeFacts(
      parsed("loc x 0\nthread 0\n  txbegin\n  store x 1\n  txend\n"
             "post mem x 1\n"));
  EXPECT_FALSE(Txn.TxnFree);
  EXPECT_EQ(Txn.Vocabulary, vocab::Base | vocab::Txn);

  ProgramFacts Rmw = computeFacts(
      parsed("loc x 0\nthread 0\n  load x rmw:1\n  store x 1 rmw:0\n"
             "post mem x 1\n"));
  EXPECT_FALSE(Rmw.RmwFree);
  EXPECT_EQ(Rmw.Vocabulary, vocab::Base | vocab::Rmw);

  ProgramFacts Lock = computeFacts(
      parsed("loc x 0\nthread 0\n  lock\n  store x 1\n  unlock\n"
             "post mem x 1\n"));
  EXPECT_FALSE(Lock.LockRegionFree);
  EXPECT_EQ(Lock.Vocabulary, vocab::Base | vocab::Lock);

  ProgramFacts Fence = computeFacts(
      parsed("loc x 0\nthread 0\n  store x 1\n  fence mfence\n  load x\n"
             "post reg 0 r2 1\n"));
  EXPECT_EQ(Fence.FenceKinds,
            1u << static_cast<unsigned>(FenceKind::MFence));
  EXPECT_EQ(Fence.Vocabulary, vocab::Base | vocab::fence(FenceKind::MFence));

  // An atomic transaction speaks Atomic as well as Txn.
  ProgramFacts ATxn = computeFacts(
      parsed("loc x 0\nthread 0\n  txbegin atomic\n  store x 1\n  txend\n"
             "post mem x 1\n"));
  EXPECT_EQ(ATxn.Vocabulary, vocab::Base | vocab::Txn | vocab::Atomic);
}

TEST(Facts_, AtomicOnlyAndSingleLocation) {
  ProgramFacts F = computeFacts(
      parsed("loc x 0\nthread 0\n  store x 1 sc\n  load x acq\n"
             "post reg 0 r1 1\n"));
  EXPECT_TRUE(F.AtomicOnly);
  EXPECT_TRUE(F.SingleLocation);
  EXPECT_EQ(F.Vocabulary, vocab::Base | vocab::Atomic);

  // One non-atomic access flips AtomicOnly; a second location flips
  // SingleLocation.
  ProgramFacts G = computeFacts(
      parsed("loc x 0\nloc y 0\nthread 0\n  store x 1 sc\n  load y\n"
             "post reg 0 r1 0\n"));
  EXPECT_FALSE(G.AtomicOnly);
  EXPECT_FALSE(G.SingleLocation);
}

TEST(Facts_, ExecutionVocabularyAgreesWithBuilders) {
  EXPECT_EQ(executionVocabulary(shapes::storeBuffering()), vocab::Base);

  // A fence-bearing execution.
  ExecutionBuilder FB;
  FB.write(0, 0, MemOrder::NonAtomic, 1);
  FB.fence(0, FenceKind::Dmb);
  FB.read(1, 0);
  EXPECT_EQ(executionVocabulary(FB.build()),
            vocab::Base | vocab::fence(FenceKind::Dmb));

  // A transactional one.
  ExecutionBuilder TB;
  EventId W = TB.write(0, 0, MemOrder::NonAtomic, 1);
  TB.read(1, 0);
  TB.txn({W});
  EXPECT_EQ(executionVocabulary(TB.build()), vocab::Base | vocab::Txn);

  // An RMW pair.
  ExecutionBuilder RB;
  EventId R = RB.read(0, 0);
  EventId W2 = RB.write(0, 0, MemOrder::NonAtomic, 1);
  RB.rmw(R, W2);
  EXPECT_EQ(executionVocabulary(RB.build()), vocab::Base | vocab::Rmw);

  // Atomic accesses.
  ExecutionBuilder AB;
  EventId AW = AB.write(0, 0, MemOrder::SeqCst, 1);
  EventId AR = AB.read(1, 0, MemOrder::Acquire);
  AB.rf(AW, AR);
  EXPECT_EQ(executionVocabulary(AB.build()), vocab::Base | vocab::Atomic);
}

TEST(Facts_, ProgramVocabularyBoundsEveryEnumeratedCandidate) {
  // Soundness of the over-approximation the specializer relies on: for a
  // txn-bearing corpus program, every enumerated candidate speaks a
  // subset of the program's vocabulary. (The enumerator adds transaction
  // placements only where the program declares them, fences only where
  // written, etc.)
  for (const CorpusEntry &E : sharedCorpus()) {
    ProgramFacts F = computeFacts(E.Prog);
    forEachCandidate(E.Prog, [&](const Candidate &C) {
      EXPECT_EQ(executionVocabulary(C.X) & ~F.Vocabulary, 0u)
          << E.Name << ": candidate speaks a class the program lacks";
      return !::testing::Test::HasFailure();
    });
  }
}

// ---------------------------------------------------------------------------
// Lint report JSON.
// ---------------------------------------------------------------------------

TEST(LintIO_, JsonIsCanonicalAndParses) {
  std::vector<LintedProgram> Batch;
  for (const char *Src :
       {"loc x 0\nthread 0\n  load x\npost reg 0 r0 0\n",
        "loc x 0\nloc ghost 0\nthread 0\n  txbegin\n  store x 1\npost mem x 1\n"}) {
    LintedProgram L;
    Program P = parsed(Src);
    L.Name = P.Name.empty() ? "anon" : P.Name;
    L.Report = lintProgram(P);
    L.Facts = computeFacts(P);
    Batch.push_back(std::move(L));
  }

  std::string Json = lintReportToJson(Batch);
  EXPECT_EQ(Json, lintReportToJson(Batch)); // deterministic
  EXPECT_EQ(Json.back(), '\n');

  std::optional<JsonValue> V = parseJson(Json);
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(V->getString("schema"), kLintReportSchema);
  const JsonValue *Programs = V->get("programs");
  ASSERT_NE(Programs, nullptr);
  ASSERT_TRUE(Programs->isArray());
  ASSERT_EQ(Programs->Arr.size(), 2u);

  // Second program: txbegin without txend + unused ghost location.
  const JsonValue &Dirty = Programs->Arr[1];
  EXPECT_GE(Dirty.getUint("errors"), 1u);
  EXPECT_GE(Dirty.getUint("warnings"), 1u);
  const JsonValue *Findings = Dirty.get("findings");
  ASSERT_NE(Findings, nullptr);
  ASSERT_TRUE(Findings->isArray());
  EXPECT_GE(Findings->Arr.size(), 2u);
  const JsonValue *Facts = Dirty.get("facts");
  ASSERT_NE(Facts, nullptr);
  EXPECT_FALSE(Facts->getBool("txn_free", true));
  EXPECT_EQ(Facts->getUint("vocabulary"), vocab::Base | vocab::Txn);

  // Batch rollup: the two programs' findings make it non-clean.
  EXPECT_FALSE(V->getBool("clean", true));
  EXPECT_GE(V->getUint("warnings"), 1u);
}

// ---------------------------------------------------------------------------
// Specialization: verdict-neutral, and actually discharging.
// ---------------------------------------------------------------------------

TEST(Specialize_, FullVocabularyDischargesNothing) {
  std::unique_ptr<MemoryModel> Power = ModelRegistry::parse("power");
  ASSERT_TRUE(Power);
  const MemoryModel *Raw[] = {Power.get()};
  EvalPlan Plan = EvalPlan::compile(Raw);
  EXPECT_EQ(Plan.specialize(~uint32_t(0)).discharged(), 0u);
}

TEST(Specialize_, TxnFreeProgramDischargesTxnObligations) {
  std::unique_ptr<MemoryModel> Power = ModelRegistry::parse("power");
  std::unique_ptr<MemoryModel> Tsc = ModelRegistry::parse("tsc");
  ASSERT_TRUE(Power);
  ASSERT_TRUE(Tsc);
  const MemoryModel *Raw[] = {Tsc.get(), Power.get()};
  EvalPlan Plan = EvalPlan::compile(Raw);

  ProgramFacts SbFacts =
      computeFacts(parsed("loc x 0\nloc y 0\n"
                          "thread 0\n  store x 1\n  load y\n"
                          "thread 1\n  store y 1\n  load x\n"
                          "post reg 0 r1 0\npost reg 1 r1 0\n"));
  EvalPlan::Specialization Sp = Plan.specialize(SbFacts);
  EXPECT_GT(Sp.discharged(), 0u);
  // A txn-speaking program discharges strictly less.
  EvalPlan::Specialization Full =
      Plan.specialize(SbFacts.Vocabulary | vocab::Txn | vocab::Rmw |
                      vocab::Lock | vocab::Atomic);
  EXPECT_LT(Full.discharged(), Sp.discharged());
}

TEST(Specialize_, PerExecutionSpecializationMatchesDirectEvaluation) {
  // For every enumerated execution of the x86 vocabulary, evaluating
  // under a specialization built from that execution's own vocabulary
  // (the tightest sound one) must answer exactly what the models answer.
  std::vector<std::unique_ptr<MemoryModel>> Owned;
  std::vector<const MemoryModel *> Raw;
  for (const char *Spec : {"sc", "tsc", "x86", "power", "armv8"}) {
    Owned.push_back(ModelRegistry::parse(Spec));
    ASSERT_TRUE(Owned.back()) << Spec;
    Raw.push_back(Owned.back().get());
  }
  EvalPlan Plan = EvalPlan::compile(Raw);
  EvalPlan::Scratch Scratch = Plan.makeScratch();
  std::optional<ExecutionAnalysis> Arena;
  uint64_t Seen = 0;
  ExecutionEnumerator Enum(Vocabulary::forArch(Arch::X86), 3);
  Enum.forEachBase([&](Execution &Base) {
    return Enum.forEachTxnPlacement(Base, [&](Execution &X) {
      if (!Arena)
        Arena.emplace(X);
      else
        Arena->reset(X);
      EvalPlan::Specialization Sp =
          Plan.specialize(executionVocabulary(X));
      Plan.evaluate(*Arena, Scratch, &Sp);
      ++Seen;
      for (size_t S = 0; S < Raw.size(); ++S)
        EXPECT_EQ(Scratch.consistent(S), Raw[S]->consistent(*Arena))
            << X.dump();
      return !::testing::Test::HasFailure();
    });
  });
  EXPECT_GT(Seen, 0u);
  EXPECT_GT(Scratch.counters().Discharged, 0u);
}

TEST(Specialize_, EngineRunsAreByteIdenticalOnAndOff) {
  std::vector<CheckRequest> Requests;
  for (const CorpusEntry &E : standardCorpus()) {
    CheckRequest R;
    R.Corpus = E.Name;
    R.ModelSpecs = {"sc", "tsc", "x86", "power", "armv8", "power8",
                    "power/-TxnOrder", "x86/+baseline"};
    R.WantOutcomes = true;
    Requests.push_back(std::move(R));
  }
  std::string Reference;
  for (unsigned Jobs : {1u, 4u}) {
    BatchTelemetry TOn, TOff;
    std::string On = responsesToJson(
        QueryEngine({.Jobs = Jobs, .Specialize = true}).runAll(Requests, &TOn),
        nullptr);
    std::string Off = responsesToJson(
        QueryEngine({.Jobs = Jobs, .Specialize = false})
            .runAll(Requests, &TOff),
        nullptr);
    EXPECT_EQ(On, Off) << "Jobs=" << Jobs;
    EXPECT_GT(TOn.Plan.Discharged, 0u) << "Jobs=" << Jobs;
    EXPECT_EQ(TOff.Plan.Discharged, 0u) << "Jobs=" << Jobs;
    if (Reference.empty())
      Reference = On;
    EXPECT_EQ(On, Reference) << "Jobs=" << Jobs;
  }
}

} // namespace
