//===- monotonicity_test.cpp - Transactional monotonicity (§8.1) --------------==//

#include "TestGraphs.h"
#include "metatheory/Monotonicity.h"
#include "models/Armv8Model.h"
#include "models/CppModel.h"
#include "models/PowerModel.h"
#include "models/X86Model.h"

#include <gtest/gtest.h>

using namespace tmw;

namespace {

TEST(AugmentationTest, GrowMergeAndWrap) {
  ExecutionBuilder B;
  EventId A = B.read(0, 0);
  EventId C = B.write(0, 0, MemOrder::NonAtomic, 1);
  EventId D = B.read(0, 0);
  B.txn({A});
  B.txn({C});
  Execution X = B.build();
  Vocabulary V = Vocabulary::forArch(Arch::X86);
  std::vector<Execution> Ys = txnAugmentations(X, V);

  bool SawMerge = false, SawGrow = false, SawWrap = false;
  for (const Execution &Y : Ys) {
    SawMerge |= Y.Txn[A] == Y.Txn[C] && Y.Txn[A] != kNoClass;
    SawGrow |= Y.Txn[D] != kNoClass && Y.Txn[D] == Y.Txn[C];
    SawWrap |= Y.Txn[D] != kNoClass && Y.Txn[D] != Y.Txn[C];
  }
  EXPECT_TRUE(SawMerge);
  EXPECT_TRUE(SawGrow);
  EXPECT_TRUE(SawWrap);
  for (const Execution &Y : Ys)
    EXPECT_EQ(Y.checkWellFormed(), nullptr);
}

TEST(AugmentationTest, EveryAugmentationAddsStxnEdges) {
  Execution X = shapes::rmwAcrossTxns(false);
  Vocabulary V = Vocabulary::forArch(Arch::Power);
  Relation Before = X.stxn();
  for (const Execution &Y : txnAugmentations(X, V)) {
    Relation After = Y.stxn();
    EXPECT_TRUE(Before.subsetOf(After));
    EXPECT_GT(After.numPairs(), Before.numPairs());
  }
}

TEST(MonotonicityTest, PowerCounterexampleAtTwoEvents) {
  // Table 2: Power, 2 events, counterexample (TxnCancelsRMW vs
  // coalescing).
  PowerModel M;
  Vocabulary V = Vocabulary::forArch(Arch::Power);
  MonotonicityResult R = checkMonotonicity(M, V, 2, 60.0);
  ASSERT_TRUE(R.CounterexampleFound);
  EXPECT_FALSE(M.consistent(R.X));
  EXPECT_TRUE(M.consistent(R.Y));
  // The counterexample is the §8.1 shape: an rmw crossing transactions.
  EXPECT_FALSE(R.X.Rmw.isEmpty());
  EXPECT_EQ(M.check(R.X).FailedAxiom, "TxnCancelsRMW");
}

TEST(MonotonicityTest, Armv8CounterexampleAtTwoEvents) {
  Armv8Model M;
  Vocabulary V = Vocabulary::forArch(Arch::Armv8);
  MonotonicityResult R = checkMonotonicity(M, V, 2, 60.0);
  ASSERT_TRUE(R.CounterexampleFound);
  EXPECT_EQ(M.check(R.X).FailedAxiom, "TxnCancelsRMW");
}

TEST(MonotonicityTest, X86HoldsAtSmallBounds) {
  // Table 2: no x86 counterexample up to 6 events; we sweep to 4 here
  // (the bench pushes further).
  X86Model M;
  Vocabulary V = Vocabulary::forArch(Arch::X86);
  for (unsigned N = 2; N <= 4; ++N) {
    MonotonicityResult R = checkMonotonicity(M, V, N, 120.0);
    EXPECT_FALSE(R.CounterexampleFound) << "at " << N << " events:\n"
                                        << R.X.dump() << R.Y.dump();
    EXPECT_TRUE(R.Complete);
  }
}

TEST(MonotonicityTest, CppHoldsAtSmallBounds) {
  CppModel M;
  Vocabulary V = Vocabulary::forArch(Arch::Cpp);
  for (unsigned N = 2; N <= 3; ++N) {
    MonotonicityResult R = checkMonotonicity(M, V, N, 120.0);
    EXPECT_FALSE(R.CounterexampleFound) << "at " << N << " events:\n"
                                        << R.X.dump() << R.Y.dump();
  }
}

TEST(MonotonicityTest, PowerWithoutTxnCancelsRmwHolds) {
  // Ablation: TxnCancelsRMW is exactly what breaks monotonicity.
  PowerModel::Config C;
  C.TxnCancelsRmw = false;
  PowerModel M(C);
  Vocabulary V = Vocabulary::forArch(Arch::Power);
  MonotonicityResult R = checkMonotonicity(M, V, 2, 60.0);
  EXPECT_FALSE(R.CounterexampleFound);
}

TEST(MonotonicityTest, SpecificCoalescingPairRejected) {
  // Directly: the split §8.1 pair is a counterexample instance.
  Execution Split = shapes::rmwAcrossTxns(false);
  Execution Joined = shapes::rmwAcrossTxns(true);
  for (const MemoryModel *M :
       std::initializer_list<const MemoryModel *>{
           new PowerModel(), new Armv8Model()}) {
    EXPECT_FALSE(M->consistent(Split)) << M->name();
    EXPECT_TRUE(M->consistent(Joined)) << M->name();
    delete M;
  }
}

} // namespace
