//===- MemoryModel.h - Axiomatic consistency predicates ---------*- C++ -*-==//
///
/// \file
/// The `MemoryModel` interface: a consistency predicate over executions
/// with named-axiom diagnostics. Concrete models implement the axioms from
/// the paper's Fig. 4 (SC/TSC), Fig. 5 (x86), Fig. 6 (Power), Fig. 8
/// (ARMv8), and Fig. 9 (C++), each with per-axiom ablation toggles so the
/// non-transactional baselines and the §9 comparisons are the same code.
///
/// Checks are phrased over an `ExecutionAnalysis`, the memoized view of an
/// immutable execution: evaluating several models (or several ablation
/// configurations) on one candidate shares every derived relation. An
/// `Execution` converts implicitly to a temporary single-check analysis,
/// so `M.check(X)` / `M.consistent(X)` keep working as before.
///
//===----------------------------------------------------------------------===//

#ifndef TMW_MODELS_MEMORYMODEL_H
#define TMW_MODELS_MEMORYMODEL_H

#include "execution/ExecutionAnalysis.h"

namespace tmw {

/// Outcome of a consistency check.
struct ConsistencyResult {
  bool Consistent;
  /// Name of the first violated axiom, or nullptr when consistent.
  const char *FailedAxiom;

  static ConsistencyResult ok() { return {true, nullptr}; }
  static ConsistencyResult fail(const char *Axiom) { return {false, Axiom}; }
  explicit operator bool() const { return Consistent; }
};

/// Target architectures / languages.
enum class Arch : uint8_t { SC, TSC, X86, Power, Armv8, Cpp };

/// Human-readable architecture name.
const char *archName(Arch A);

/// An axiomatic memory model: a predicate selecting the consistent
/// candidate executions.
class MemoryModel {
public:
  virtual ~MemoryModel();

  virtual const char *name() const = 0;
  virtual Arch arch() const = 0;
  /// Evaluate the consistency axioms over \p A. Checks are stateless: all
  /// mutable caching lives in the analysis, so a const model is safe to
  /// share across enumeration shards (each with its own analysis).
  virtual ConsistencyResult check(const ExecutionAnalysis &A) const = 0;

  bool consistent(const ExecutionAnalysis &A) const {
    return check(A).Consistent;
  }
};

/// WeakIsol (§3.3): acyclic(weaklift(com, stxn)).
bool holdsWeakIsolation(const ExecutionAnalysis &A);
/// StrongIsol (§3.3): acyclic(stronglift(com, stxn)).
bool holdsStrongIsolation(const ExecutionAnalysis &A);
/// StrongIsol restricted to atomic transactions (Theorem 7.2's conclusion).
bool holdsStrongIsolationAtomic(const ExecutionAnalysis &A);

} // namespace tmw

#endif // TMW_MODELS_MEMORYMODEL_H
