//===- BenchUtil.h - Shared helpers for the experiment harnesses -*- C++ -*-==//
///
/// \file
/// Table formatting and budget knobs shared by the bench binaries. Each
/// bench regenerates one table or figure of the paper;
/// `TMW_BENCH_BUDGET_SECONDS` and `TMW_BENCH_MAX_EVENTS` scale the searches
/// (defaults keep every binary under a couple of minutes, like the paper's
/// preliminary-results mode in §5.3). `--jobs N` (or `TMW_BENCH_JOBS`)
/// shards the enumeration across N threads. `writeBenchJson` drops a
/// machine-readable `BENCH_<name>.json` next to the binary so the perf
/// trajectory of the hot paths can be tracked across commits.
///
//===----------------------------------------------------------------------===//

#ifndef TMW_BENCH_BENCHUTIL_H
#define TMW_BENCH_BENCHUTIL_H

#include "synth/Conformance.h"

#include <charconv>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace tmw::bench {

inline double budgetSeconds(double Default) {
  if (const char *S = std::getenv("TMW_BENCH_BUDGET_SECONDS"))
    return std::atof(S);
  return Default;
}

inline unsigned maxEvents(unsigned Default) {
  if (const char *S = std::getenv("TMW_BENCH_MAX_EVENTS"))
    return static_cast<unsigned>(std::atoi(S));
  return Default;
}

/// Strictly parse one jobs value (digits only, positive, in-range); on a
/// malformed value — the old `std::atoi` silently turned `--jobs foo` or
/// an overflow into 0, clamped to 1 — print a one-line diagnostic naming
/// \p What and exit nonzero, matching the tools' file:line-style strict
/// diagnostics.
inline unsigned parseJobsStrict(const char *Value, const char *What) {
  const char *End = Value + std::strlen(Value);
  unsigned Parsed = 0;
  auto [P, Ec] = std::from_chars(Value, End, Parsed);
  if (Ec != std::errc() || P != End || Parsed == 0) {
    std::fprintf(stderr, "error: %s %s: expected a positive integer\n",
                 What, Value);
    std::exit(2);
  }
  return Parsed;
}

/// Strictly parse one non-negative count value (digits only, in-range;
/// 0 is a legitimate explicit value — "unlimited" for the cap-style
/// flags). The one parser behind every tool count flag (`--cap`,
/// `--bases`, `--max-clients`, `--max-findings`, ...): a malformed or
/// out-of-range value is a one-line diagnostic naming \p What + exit 2,
/// never a silently-parsed 0.
inline uint64_t parseCountStrict(const char *Value, const char *What) {
  const char *End = Value + std::strlen(Value);
  uint64_t Parsed = 0;
  auto [P, Ec] = std::from_chars(Value, End, Parsed);
  if (Ec != std::errc() || P != End || Value == End) {
    std::fprintf(stderr, "error: %s %s: expected a non-negative integer\n",
                 What, Value);
    std::exit(2);
  }
  return Parsed;
}

/// Parse the `--jobs N` / `--jobs=N` command-line knob, falling back to
/// `TMW_BENCH_JOBS`, then to \p Default (1: deterministic single-threaded
/// runs unless parallelism is asked for). Malformed values are a
/// diagnostic + exit 2, never a silent 1.
inline unsigned jobs(int Argc, char **Argv, unsigned Default = 1) {
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--jobs") == 0 && I + 1 < Argc)
      return parseJobsStrict(Argv[I + 1], "--jobs");
    if (std::strncmp(Argv[I], "--jobs=", 7) == 0)
      return parseJobsStrict(Argv[I] + 7, "--jobs");
  }
  if (const char *S = std::getenv("TMW_BENCH_JOBS"))
    return parseJobsStrict(S, "TMW_BENCH_JOBS");
  return Default;
}

inline void header(const char *Title, const char *PaperRef) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", Title);
  std::printf("reproduces: %s\n", PaperRef);
  std::printf("================================================================\n");
}

inline const char *yesNo(bool B) { return B ? "yes" : "no"; }

/// Run the work-stealing Forbid synthesis across a doubling jobs sweep
/// (1, 2, 4, 8), printing one line per point and returning the entries as
/// a JSON array body (no brackets) for `writeBenchJson`. With a
/// non-binding budget the test count is identical across the sweep; only
/// wall time moves.
inline std::string synthesisJobsSweepJson(const MemoryModel &Tm,
                                          const MemoryModel &Baseline,
                                          const Vocabulary &V,
                                          unsigned NumEvents,
                                          double BudgetSeconds) {
  std::string Json;
  for (unsigned J = 1; J <= 8; J *= 2) {
    ForbidSuite S =
        synthesizeForbid(Tm, Baseline, V, NumEvents, BudgetSeconds, J);
    std::printf("  --jobs %u: %.2fs (%zu tests)\n", J, S.SynthesisSeconds,
                S.Tests.size());
    char Entry[128];
    std::snprintf(Entry, sizeof(Entry),
                  "%s{\"jobs\": %u, \"wall_seconds\": %.4f, \"tests\": %zu}",
                  Json.empty() ? "" : ", ", J, S.SynthesisSeconds,
                  S.Tests.size());
    Json += Entry;
  }
  return Json;
}

/// Write `BENCH_<name>.json` containing \p JsonBody (a complete JSON
/// object) into the working directory. Returns true on success.
inline bool writeBenchJson(const char *Name, const std::string &JsonBody) {
  std::string Path = std::string("BENCH_") + Name + ".json";
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  std::fputs(JsonBody.c_str(), F);
  std::fputc('\n', F);
  std::fclose(F);
  std::printf("wrote %s\n", Path.c_str());
  return true;
}

} // namespace tmw::bench

#endif // TMW_BENCH_BENCHUTIL_H
