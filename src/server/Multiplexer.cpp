//===- Multiplexer.cpp - Poll-based concurrent connection multiplexer ----------==//

#include "server/Multiplexer.h"

#include "query/QueryIO.h"
#include "server/QueryServer.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <unordered_map>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

// macOS has no MSG_NOSIGNAL; writes there can raise SIGPIPE on a closed
// peer, which the CLI ignores process-wide instead.
#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

using namespace tmw;
using namespace tmw::server;

namespace {

int failSys(const char *What, const std::string &Path) {
  std::fprintf(stderr, "error: %s %s: %s\n", What, Path.c_str(),
               std::strerror(errno));
  return 1;
}

bool setNonBlocking(int Fd) {
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  return Flags >= 0 && ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK) == 0;
}

/// A completed batch document travelling from a pool worker back to the
/// loop thread.
struct DoneDoc {
  uint64_t ConnId = 0;
  uint64_t Seq = 0;
  std::string Doc;
};

/// The worker→loop mailbox. Shared (via shared_ptr) between the loop and
/// every in-flight batch's completion lambda, so a completion can never
/// dangle whatever the shutdown order. The wake write is performed under
/// the lock, against a nonblocking fd the loop retires under the same
/// lock — so no write can race the pipe's closure.
struct Mailbox {
  std::mutex Mu;
  std::vector<DoneDoc> Docs;
  int WakeWr = -1;

  void post(DoneDoc D) {
    std::lock_guard<std::mutex> Lock(Mu);
    Docs.push_back(std::move(D));
    if (WakeWr >= 0) {
      // Nonblocking; a full pipe is fine — earlier bytes already wake
      // the loop.
      [[maybe_unused]] ssize_t N = ::write(WakeWr, "x", 1);
    }
  }

  std::vector<DoneDoc> drain() {
    std::lock_guard<std::mutex> Lock(Mu);
    return std::exchange(Docs, {});
  }

  void retireWake() {
    std::lock_guard<std::mutex> Lock(Mu);
    WakeWr = -1;
  }
};

/// One connection's state machine.
struct Conn {
  int Fd = -1;
  uint64_t Id = 0;

  /// Framing: bytes read but not yet peeled into lines.
  std::string InBuf;
  /// Pending output: one flat buffer with a consumed-prefix offset.
  std::string OutBuf;
  size_t OutOff = 0;

  /// Batch sequencing: every processed line gets the next Seq; documents
  /// append to OutBuf strictly in Seq order, out-of-order completions
  /// wait in `Ready`.
  uint64_t NextSeq = 0;
  uint64_t NextToFlush = 0;
  std::map<uint64_t, std::string> Ready;
  size_t ReadyBytes = 0;
  /// In-flight pool batches of this connection: Seq → server batch id
  /// (for cancellation on disconnect).
  std::map<uint64_t, uint64_t> Live;

  bool ReadClosed = false;
  /// Backpressure: reading (and parsing) paused until output drains.
  bool PausedBP = false;

  MuxConnStats Stats;

  size_t pendingOut() const { return OutBuf.size() - OutOff + ReadyBytes; }
};

} // namespace

/// The event loop proper: all state lives for one `serve` call; the only
/// cross-thread traffic is the Mailbox and the owner's stop flag.
struct ConnectionMultiplexer::Impl {
  ConnectionMultiplexer &Owner;
  QueryServer &Server;
  const MuxOptions &Opts;

  int ListenFd = -1;
  std::string Path;
  std::shared_ptr<Mailbox> Mail;
  std::unordered_map<uint64_t, Conn> Conns;
  uint64_t NextConnId = 0;
  uint64_t Accepted = 0;
  /// Batches submitted whose completion doc has not been drained yet;
  /// the loop exits only at zero, so no completion can outlive it.
  size_t Outstanding = 0;

  explicit Impl(ConnectionMultiplexer &Owner)
      : Owner(Owner), Server(Owner.Server), Opts(Owner.Opts) {}

  bool stopping() const {
    return Owner.StopRequested.load(std::memory_order_relaxed);
  }
  bool acceptingDone() const {
    return stopping() ||
           (Opts.AcceptLimit != 0 && Accepted >= Opts.AcceptLimit);
  }

  unsigned fairnessCap() const {
    return Opts.FairnessCap != 0 ? Opts.FairnessCap : Server.jobs();
  }

  // --- output ------------------------------------------------------------

  /// Append every in-order completed document to the wire buffer.
  void flushReady(Conn &C) {
    auto It = C.Ready.begin();
    while (It != C.Ready.end() && It->first == C.NextToFlush) {
      C.ReadyBytes -= It->second.size();
      C.OutBuf += It->second;
      It = C.Ready.erase(It);
      ++C.NextToFlush;
    }
    C.Stats.PeakBuffered = std::max(C.Stats.PeakBuffered, C.pendingOut());
  }

  /// Drain as much pending output as the socket accepts. Returns false
  /// when the connection died (already aborted).
  bool tryWrite(Conn &C) {
    while (C.OutOff < C.OutBuf.size()) {
      ssize_t N = ::send(C.Fd, C.OutBuf.data() + C.OutOff,
                         C.OutBuf.size() - C.OutOff, MSG_NOSIGNAL);
      if (N < 0) {
        if (errno == EINTR)
          continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
          break;
        abortConn(C);
        return false;
      }
      C.OutOff += static_cast<size_t>(N);
      C.Stats.BytesOut += static_cast<uint64_t>(N);
    }
    if (C.OutOff == C.OutBuf.size()) {
      C.OutBuf.clear();
      C.OutOff = 0;
    } else if (C.OutOff > (1u << 20)) {
      C.OutBuf.erase(0, C.OutOff);
      C.OutOff = 0;
    }
    // Backpressure hysteresis: resume reading once drained below half
    // the high-water mark, and catch up on input buffered while paused.
    if (C.PausedBP && C.pendingOut() < Opts.OutputHighWater / 2) {
      C.PausedBP = false;
      processInput(C);
    }
    return true;
  }

  /// A document for (C, Seq) is complete: queue it in order. The actual
  /// socket write happens only from the poll dispatch (level-triggered
  /// POLLOUT fires on the next iteration) — never reentrantly from
  /// delivery, so a dead peer can only tear a connection down in one
  /// well-defined place.
  void deliver(Conn &C, uint64_t Seq, std::string Doc) {
    C.ReadyBytes += Doc.size();
    C.Ready.emplace(Seq, std::move(Doc));
    flushReady(C);
  }

  // --- input -------------------------------------------------------------

  /// One complete NDJSON line: blank → skip, malformed → error document
  /// (byte-identical to `serveLine`'s), otherwise submit one tagged
  /// batch on the shared pool.
  void handleLine(Conn &C, std::string_view Line) {
    if (Line.find_first_not_of(" \t\r") == std::string_view::npos)
      return;
    uint64_t Seq = C.NextSeq++;
    std::vector<CheckRequest> Requests;
    std::string Error;
    if (!requestsFromJson(std::string(Line), Requests, &Error)) {
      Server.recordBadBatch();
      ++C.Stats.BadBatches;
      deliver(C, Seq, batchErrorToJson("batch parse error: " + Error));
      return;
    }
    ++C.Stats.Batches;
    C.Stats.Requests += Requests.size();
    ++Outstanding;
    bool Telemetry = Server.telemetry();
    std::shared_ptr<Mailbox> MB = Mail;
    uint64_t ConnId = C.Id;
    // The completion runs on a pool worker: serialise there (keeps the
    // loop thread byte-moving only) and post the document home.
    uint64_t BatchId = Server.submitBatch(
        std::move(Requests),
        [MB, ConnId, Seq, Telemetry](std::vector<CheckResponse> &&Responses,
                                     BatchTelemetry &&Tele) {
          MB->post({ConnId, Seq,
                    responsesToJson(Responses, Telemetry ? &Tele : nullptr)});
        },
        fairnessCap());
    // Empty batches (id 0) completed inline — their doc is already in
    // the mailbox; nothing to cancel later either way.
    if (BatchId != 0)
      C.Live.emplace(Seq, BatchId);
  }

  /// Peel complete lines off the input buffer, respecting the two pause
  /// conditions (backpressure high-water, per-connection batch window).
  /// Leftover bytes wait in InBuf for the next drain/completion.
  void processInput(Conn &C) {
    size_t Pos = 0;
    while (true) {
      if (C.Live.size() >= Opts.MaxBatchesInFlight)
        break;
      if (C.pendingOut() > Opts.OutputHighWater) {
        if (!C.PausedBP) {
          C.PausedBP = true;
          ++C.Stats.BackpressurePauses;
        }
        break;
      }
      size_t Nl = C.InBuf.find('\n', Pos);
      std::string_view Line;
      if (Nl != std::string::npos) {
        Line = std::string_view(C.InBuf).substr(Pos, Nl - Pos);
        Pos = Nl + 1;
      } else if (C.ReadClosed && Pos < C.InBuf.size()) {
        // The serial path's trailing-line rule: an unterminated final
        // line still answers at EOF.
        Line = std::string_view(C.InBuf).substr(Pos);
        Pos = C.InBuf.size();
      } else {
        break;
      }
      handleLine(C, Line);
    }
    C.InBuf.erase(0, Pos);
  }

  /// Socket readable: buffer whatever arrived (frames tear anywhere) and
  /// peel lines. Bounded per event so one firehose client cannot starve
  /// the loop.
  void onReadable(Conn &C) {
    char Chunk[65536];
    for (int Rounds = 0; Rounds < 16; ++Rounds) {
      ssize_t N = ::read(C.Fd, Chunk, sizeof(Chunk));
      if (N < 0) {
        if (errno == EINTR)
          continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
          break;
        abortConn(C);
        return;
      }
      if (N == 0) {
        C.ReadClosed = true;
        break;
      }
      C.InBuf.append(Chunk, static_cast<size_t>(N));
      C.Stats.BytesIn += static_cast<uint64_t>(N);
      if (static_cast<size_t>(N) < sizeof(Chunk))
        break;
    }
    processInput(C);
    // Input high-water: if line peeling is not paused yet the buffer
    // still exceeds the mark, the leftover is one unterminated line a
    // misbehaving client is streaming with no newline. Answer with an
    // error document and stop reading — framing cannot resync, and the
    // buffer must not grow without bound. (When peeling *is* paused the
    // buffer may legitimately hold complete lines, but then POLLIN is
    // off and the buffer cannot grow either.)
    if (!C.ReadClosed && !C.PausedBP &&
        C.Live.size() < Opts.MaxBatchesInFlight &&
        C.InBuf.size() > Opts.MaxLineBytes) {
      Server.recordBadBatch();
      ++C.Stats.BadBatches;
      deliver(C, C.NextSeq++,
              batchErrorToJson("batch line exceeds maximum length"));
      C.InBuf.clear();
      C.InBuf.shrink_to_fit();
      C.ReadClosed = true;
    }
  }

  // --- lifecycle ---------------------------------------------------------

  /// Hard disconnect: cancel this connection's in-flight batches and
  /// discard its pending output — other connections are untouched. The
  /// cancelled batches' completion docs still arrive (and are dropped by
  /// the ConnId lookup), so Outstanding stays exact.
  void abortConn(Conn &C) {
    for (const auto &[Seq, BatchId] : C.Live)
      Server.cancelBatch(BatchId);
    C.Stats.Aborted = true;
    ++Owner.Stats.Aborted;
    closeConn(C);
  }

  void closeConn(Conn &C) {
    ::close(C.Fd);
    Owner.Stats.Connections.push_back(C.Stats);
    Conns.erase(C.Id); // invalidates C
  }

  /// Graceful teardown once a half-closed connection has nothing left to
  /// do: input consumed, every batch answered, output on the wire.
  ///
  /// "Every batch answered" must be judged by NextToFlush == NextSeq
  /// (every assigned sequence's document appended to OutBuf), not by
  /// Live/Ready emptiness: an inline-completed empty batch has no Live
  /// entry and its document sits in the worker mailbox until the next
  /// drain — a Live/Ready check would close the connection between the
  /// dispatch and that drain, silently dropping the response. Live and
  /// Ready emptiness follow for free: any entry there holds a sequence
  /// in [NextToFlush, NextSeq).
  void maybeClose(Conn &C) {
    if (C.ReadClosed && C.InBuf.empty() && C.NextToFlush == C.NextSeq &&
        C.OutOff == C.OutBuf.size())
      closeConn(C);
  }

  void onAccept() {
    while (Conns.size() < Opts.MaxClients && !acceptingDone()) {
      int Fd = ::accept(ListenFd, nullptr, nullptr);
      if (Fd < 0) {
        if (errno == EINTR || errno == ECONNABORTED)
          continue;
        if (errno != EAGAIN && errno != EWOULDBLOCK)
          std::fprintf(stderr, "warning: accept %s: %s\n", Path.c_str(),
                       std::strerror(errno));
        break;
      }
      if (!setNonBlocking(Fd)) {
        ::close(Fd);
        continue;
      }
      uint64_t Id = ++NextConnId;
      Conn &C = Conns[Id];
      C.Fd = Fd;
      C.Id = Id;
      C.Stats.Id = Id;
      ++Accepted;
      ++Owner.Stats.Accepted;
    }
  }

  /// Drain the worker mailbox: route each completed document to its
  /// connection (dropped if the client is gone), then let the connection
  /// resume input or finish closing.
  void drainMailbox() {
    for (DoneDoc &D : Mail->drain()) {
      --Outstanding;
      auto It = Conns.find(D.ConnId);
      if (It == Conns.end())
        continue; // client vanished mid-batch: discard, nobody disturbed
      Conn &C = It->second;
      C.Live.erase(D.Seq);
      deliver(C, D.Seq, std::move(D.Doc));
      if (Conns.count(D.ConnId) == 0)
        continue; // deliver's write may have aborted it
      processInput(C); // a freed batch slot may unblock buffered lines
      maybeClose(C);
    }
  }

  int run(const std::string &SocketPath) {
    Path = SocketPath;
    sockaddr_un Addr{};
    Addr.sun_family = AF_UNIX;
    if (Path.size() >= sizeof(Addr.sun_path)) {
      std::fprintf(stderr, "error: socket path too long (max %zu): %s\n",
                   sizeof(Addr.sun_path) - 1, Path.c_str());
      return 1;
    }
    std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);

    ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (ListenFd < 0)
      return failSys("socket", Path);
    ::unlink(Path.c_str()); // replace a stale socket file
    if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr),
               sizeof(Addr)) < 0 ||
        ::listen(ListenFd, /*backlog=*/64) < 0 ||
        !setNonBlocking(ListenFd)) {
      int E = failSys("bind/listen", Path);
      ::close(ListenFd);
      return E;
    }

    Mail = std::make_shared<Mailbox>();
    Mail->WakeWr = Owner.WakePipe[1];

    std::vector<pollfd> Fds;
    std::vector<uint64_t> FdConn; // parallel: conn id per pollfd (0 = none)
    bool Stopped = false;
    for (;;) {
      // Stop: cancel everything once, then keep looping to drain.
      if (stopping() && !Stopped) {
        Stopped = true;
        while (!Conns.empty())
          abortConn(Conns.begin()->second);
      }
      if ((Stopped || acceptingDone()) && Conns.empty() && Outstanding == 0)
        break;

      Fds.clear();
      FdConn.clear();
      Fds.push_back({Owner.WakePipe[0], POLLIN, 0});
      FdConn.push_back(0);
      if (!acceptingDone() && Conns.size() < Opts.MaxClients) {
        Fds.push_back({ListenFd, POLLIN, 0});
        FdConn.push_back(0);
      }
      for (auto &[Id, C] : Conns) {
        short Events = 0;
        if (!C.ReadClosed && !C.PausedBP &&
            C.Live.size() < Opts.MaxBatchesInFlight)
          Events |= POLLIN;
        if (C.OutOff < C.OutBuf.size())
          Events |= POLLOUT;
        Fds.push_back({C.Fd, Events, 0});
        FdConn.push_back(Id);
      }

      if (::poll(Fds.data(), Fds.size(), -1) < 0) {
        if (errno == EINTR)
          continue;
        std::fprintf(stderr, "error: poll: %s\n", std::strerror(errno));
        break;
      }

      // Wake pipe: drain the poke bytes, then the mailbox below.
      if (Fds[0].revents & POLLIN) {
        char Sink[256];
        while (::read(Owner.WakePipe[0], Sink, sizeof(Sink)) > 0)
          ;
      }
      for (size_t I = 1; I < Fds.size(); ++I) {
        if (Fds[I].revents == 0)
          continue;
        if (FdConn[I] == 0) {
          onAccept();
          continue;
        }
        auto It = Conns.find(FdConn[I]);
        if (It == Conns.end())
          continue;
        Conn &C = It->second;
        if (Fds[I].revents & (POLLERR | POLLHUP | POLLNVAL)) {
          // Peer fully gone (POLLHUP on a Unix stream means both
          // directions closed): nobody can read our answers — cancel
          // and discard. A half-close (shutdown(WR)) arrives as a plain
          // EOF read instead and is served to completion.
          abortConn(C);
          continue;
        }
        if (Fds[I].revents & POLLOUT)
          if (!tryWrite(C))
            continue;
        if (Fds[I].revents & POLLIN) {
          onReadable(C);
          if (Conns.count(FdConn[I]) == 0)
            continue;
        }
        maybeClose(C);
      }
      drainMailbox();
    }

    // No completion can be in flight past this point (Outstanding == 0
    // and every post precedes its drain), but retire the wake end under
    // the mailbox lock anyway so a stray post can never hit a dead fd.
    Mail->retireWake();
    ::close(ListenFd);
    ::unlink(Path.c_str());
    return 0;
  }
};

ConnectionMultiplexer::ConnectionMultiplexer(QueryServer &S, MuxOptions Opts)
    : Server(S), Opts(Opts) {
  if (::pipe(WakePipe) != 0) {
    WakePipe[0] = WakePipe[1] = -1;
    return;
  }
  setNonBlocking(WakePipe[0]);
  setNonBlocking(WakePipe[1]);
}

ConnectionMultiplexer::~ConnectionMultiplexer() {
  if (WakePipe[0] >= 0)
    ::close(WakePipe[0]);
  if (WakePipe[1] >= 0)
    ::close(WakePipe[1]);
}

int ConnectionMultiplexer::serve(const std::string &Path) {
  if (WakePipe[0] < 0)
    return failSys("pipe", Path);
  Impl Loop(*this);
  return Loop.run(Path);
}

void ConnectionMultiplexer::requestStop() {
  StopRequested.store(true, std::memory_order_relaxed);
  if (WakePipe[1] >= 0) {
    [[maybe_unused]] ssize_t N = ::write(WakePipe[1], "x", 1);
  }
}
