//===- Execution.cpp - Candidate execution graphs ---------------------------==//

#include "execution/Execution.h"

#include <cstdio>

using namespace tmw;

void Execution::clear(unsigned NumEvents) {
  assert(NumEvents <= kMaxEvents && "execution too large");
  Num = NumEvents;
  Events.fill(Event());
  Po = Relation(Num);
  Rf = Relation(Num);
  Co = Relation(Num);
  Addr = Relation(Num);
  Data = Relation(Num);
  Ctrl = Relation(Num);
  Rmw = Relation(Num);
  Txn.fill(kNoClass);
  Cr.fill(kNoClass);
  AtomicTxns = 0;
}

unsigned Execution::numThreads() const {
  unsigned N = 0;
  for (unsigned E = 0; E < Num; ++E)
    N = std::max(N, Events[E].Thread + 1);
  return Num == 0 ? 0 : N;
}

unsigned Execution::numLocations() const {
  int N = 0;
  for (unsigned E = 0; E < Num; ++E)
    N = std::max(N, Events[E].Loc + 1);
  return static_cast<unsigned>(N);
}

unsigned Execution::numTxns() const {
  int N = 0;
  for (unsigned E = 0; E < Num; ++E)
    N = std::max(N, Txn[E] + 1);
  return static_cast<unsigned>(N);
}

unsigned Execution::numCrs() const {
  int N = 0;
  for (unsigned E = 0; E < Num; ++E)
    N = std::max(N, Cr[E] + 1);
  return static_cast<unsigned>(N);
}

EventSet Execution::reads() const { return ofKind(EventKind::Read); }
EventSet Execution::writes() const { return ofKind(EventKind::Write); }
EventSet Execution::fences() const { return ofKind(EventKind::Fence); }

EventSet Execution::accesses() const { return reads() | writes(); }

EventSet Execution::fences(FenceKind K) const {
  EventSet S;
  for (unsigned E = 0; E < Num; ++E)
    if (Events[E].isFence() && Events[E].Fence == K)
      S.insert(E);
  return S;
}

EventSet Execution::atomics() const {
  EventSet S;
  for (unsigned E = 0; E < Num; ++E)
    if (Events[E].isAtomic())
      S.insert(E);
  return S;
}

EventSet Execution::acquires() const {
  EventSet S;
  for (unsigned E = 0; E < Num; ++E)
    if (Events[E].isAcquire())
      S.insert(E);
  return S;
}

EventSet Execution::releases() const {
  EventSet S;
  for (unsigned E = 0; E < Num; ++E)
    if (Events[E].isRelease())
      S.insert(E);
  return S;
}

EventSet Execution::seqCst() const {
  EventSet S;
  for (unsigned E = 0; E < Num; ++E)
    if (Events[E].isSeqCst())
      S.insert(E);
  return S;
}

EventSet Execution::ofKind(EventKind K) const {
  EventSet S;
  for (unsigned E = 0; E < Num; ++E)
    if (Events[E].Kind == K)
      S.insert(E);
  return S;
}

EventSet Execution::transactional() const {
  EventSet S;
  for (unsigned E = 0; E < Num; ++E)
    if (Txn[E] != kNoClass)
      S.insert(E);
  return S;
}

EventSet Execution::atomicTransactional() const {
  EventSet S;
  for (unsigned E = 0; E < Num; ++E)
    if (Txn[E] != kNoClass && (AtomicTxns >> Txn[E]) & 1)
      S.insert(E);
  return S;
}

EventSet Execution::atLocation(LocId L) const {
  EventSet S;
  for (unsigned E = 0; E < Num; ++E)
    if (Events[E].isMemoryAccess() && Events[E].Loc == L)
      S.insert(E);
  return S;
}

EventSet Execution::ofThread(unsigned T) const {
  EventSet S;
  for (unsigned E = 0; E < Num; ++E)
    if (Events[E].Thread == T)
      S.insert(E);
  return S;
}

Relation Execution::sloc() const {
  Relation R(Num);
  for (unsigned A = 0; A < Num; ++A) {
    if (!Events[A].isMemoryAccess())
      continue;
    for (unsigned B = 0; B < Num; ++B)
      if (Events[B].isMemoryAccess() && Events[A].Loc == Events[B].Loc)
        R.insert(A, B);
  }
  return R;
}

Relation Execution::sameThread() const {
  Relation R(Num);
  for (unsigned A = 0; A < Num; ++A)
    for (unsigned B = 0; B < Num; ++B)
      if (Events[A].Thread == Events[B].Thread)
        R.insert(A, B);
  return R;
}

Relation Execution::poLoc() const { return Po & sloc(); }

Relation Execution::poImm() const { return Po - Po.compose(Po); }

Relation Execution::fr() const {
  // fr = ([R] ; sloc ; [W]) \ (rf^-1 ; (co^-1)^*)  (§2.1). A read with no
  // rf source reads the initial value and is fr-before every write to its
  // location.
  Relation ReadsToWrites =
      sloc().restrictDomain(reads()).restrictRange(writes());
  Relation NotAfter =
      Rf.inverse().compose(Co.inverse().reflexiveTransitiveClosure());
  return ReadsToWrites - NotAfter;
}

Relation Execution::com() const { return Rf | Co | fr(); }

Relation Execution::ecom() const { return com() | Co.compose(Rf); }

Relation Execution::external(const Relation &R) const {
  return R - sameThread();
}

Relation Execution::internal(const Relation &R) const {
  return R & sameThread();
}

Relation Execution::fenceRel(FenceKind K) const {
  Relation Id = Relation::identityOn(fences(K), Num);
  return Po.compose(Id).compose(Po);
}

Relation Execution::stxn() const {
  Relation R(Num);
  for (unsigned A = 0; A < Num; ++A) {
    if (Txn[A] == kNoClass)
      continue;
    for (unsigned B = 0; B < Num; ++B)
      if (Txn[B] == Txn[A])
        R.insert(A, B);
  }
  return R;
}

Relation Execution::stxnAtomic() const {
  Relation R(Num);
  for (unsigned A = 0; A < Num; ++A) {
    if (Txn[A] == kNoClass || !((AtomicTxns >> Txn[A]) & 1))
      continue;
    for (unsigned B = 0; B < Num; ++B)
      if (Txn[B] == Txn[A])
        R.insert(A, B);
  }
  return R;
}

Relation Execution::tfence() const {
  Relation S = stxn();
  Relation NotS = S.complement();
  return Po & (NotS.compose(S) | S.compose(NotS));
}

Relation Execution::scr() const {
  Relation R(Num);
  for (unsigned A = 0; A < Num; ++A) {
    if (Cr[A] == kNoClass)
      continue;
    for (unsigned B = 0; B < Num; ++B)
      if (Cr[B] == Cr[A])
        R.insert(A, B);
  }
  return R;
}

bool Execution::crTransactional(int C) const {
  for (unsigned E = 0; E < Num; ++E)
    if (Cr[E] == C && Events[E].Kind == EventKind::TxLock)
      return true;
  return false;
}

Relation Execution::scrt() const {
  Relation R(Num);
  for (unsigned A = 0; A < Num; ++A) {
    if (Cr[A] == kNoClass || !crTransactional(Cr[A]))
      continue;
    for (unsigned B = 0; B < Num; ++B)
      if (Cr[B] == Cr[A])
        R.insert(A, B);
  }
  return R;
}

const char *Execution::checkWellFormed() const {
  EventSet R = reads(), W = writes(), Acc = accesses();
  Relation Sloc = sloc();

  // Location discipline: accesses name a location, other events do not.
  for (unsigned E = 0; E < Num; ++E) {
    const Event &Ev = Events[E];
    if (Ev.isMemoryAccess() && Ev.Loc < 0)
      return "memory access without a location";
    if (!Ev.isMemoryAccess() && Ev.Loc >= 0)
      return "non-access names a location";
    if (Ev.isFence() != (Ev.Fence != FenceKind::None))
      return "fence flavour on non-fence event";
  }

  // po: strict, transitive, total per thread, intra-thread only.
  if (!Po.isIrreflexive())
    return "po is not irreflexive";
  if (!Po.compose(Po).subsetOf(Po))
    return "po is not transitive";
  for (unsigned A = 0; A < Num; ++A)
    for (unsigned B = 0; B < Num; ++B) {
      bool SameThread = Events[A].Thread == Events[B].Thread;
      if (Po.contains(A, B) && !SameThread)
        return "po crosses threads";
      if (A != B && SameThread && !Po.contains(A, B) && !Po.contains(B, A))
        return "po is not total within a thread";
    }

  // rf: writes to reads of the same location, at most one source per read.
  if (!Rf.subsetOf(Relation::cross(W, R, Num) & Sloc))
    return "rf is not W->R on a shared location";
  for (EventId B : R)
    if (Rf.restrictRange(EventSet::singleton(B)).numPairs() > 1)
      return "read with two rf sources";

  // co: strict total order over the writes of each location.
  if (!Co.subsetOf(Relation::cross(W, W, Num) & Sloc))
    return "co is not W->W on a shared location";
  if (!Co.isIrreflexive())
    return "co is not irreflexive";
  if (!Co.compose(Co).subsetOf(Co))
    return "co is not transitive";
  for (EventId A : W)
    for (EventId B : W)
      if (A != B && Events[A].Loc == Events[B].Loc && !Co.contains(A, B) &&
          !Co.contains(B, A))
        return "co is not total over a location";

  // Dependencies: within po, originating at reads.
  Relation FromReads = Relation::cross(R, universe(), Num);
  if (!Addr.subsetOf(Po & FromReads))
    return "addr escapes po or starts at a non-read";
  if (!Addr.range().bits() || true) {
    // addr targets must be memory accesses.
    if (!(Addr.range() - Acc).empty())
      return "addr targets a non-access";
  }
  if (!Data.subsetOf(Po & FromReads))
    return "data escapes po or starts at a non-read";
  if (!(Data.range() - W).empty())
    return "data targets a non-write";
  // ctrl may also originate at a store-exclusive (the branch on the
  // store-conditional's status register; §8.3 footnote 3).
  Relation FromCtrlSources =
      Relation::cross(R | Rmw.range(), universe(), Num);
  if (!Ctrl.subsetOf(Po & FromCtrlSources))
    return "ctrl escapes po or starts at a non-read";
  if (!Ctrl.compose(Po).subsetOf(Ctrl))
    return "ctrl is not forward-closed";

  // rmw: read to write, same location, in po, functional both ways.
  if (!Rmw.subsetOf(Po & Sloc & Relation::cross(R, W, Num)))
    return "rmw is not R->W in po on a shared location";
  for (EventId A : Rmw.domain())
    if (Rmw.successors(A).size() > 1)
      return "rmw read paired with two writes";
  for (EventId B : Rmw.range())
    if (Rmw.inverse().successors(B).size() > 1)
      return "rmw write paired with two reads";

  // Transactions: intra-thread, po-contiguous, valid class ids.
  for (unsigned A = 0; A < Num; ++A) {
    if (Txn[A] == kNoClass)
      continue;
    if (Txn[A] < 0 || static_cast<unsigned>(Txn[A]) >= kMaxTxns)
      return "transaction class id out of range";
    for (unsigned B = 0; B < Num; ++B) {
      if (Txn[B] != Txn[A])
        continue;
      if (Events[A].Thread != Events[B].Thread)
        return "transaction spans threads";
      // Contiguity: everything po-between two class members is a member.
      for (unsigned C = 0; C < Num; ++C)
        if (Po.contains(A, C) && Po.contains(C, B) && Txn[C] != Txn[A])
          return "transaction is not contiguous in po";
    }
  }
  for (unsigned T = numTxns(); T < kMaxTxns; ++T)
    if ((AtomicTxns >> T) & 1)
      return "atomic flag on a non-existent transaction";

  // Critical regions: contiguous, opened by (Tx)Lock, closed by (Tx)Unlock.
  for (unsigned A = 0; A < Num; ++A) {
    if (Cr[A] == kNoClass) {
      if (Events[A].isLockCall())
        return "lock call outside any critical region";
      continue;
    }
    for (unsigned B = 0; B < Num; ++B) {
      if (Cr[B] != Cr[A])
        continue;
      if (Events[A].Thread != Events[B].Thread)
        return "critical region spans threads";
      for (unsigned C = 0; C < Num; ++C)
        if (Po.contains(A, C) && Po.contains(C, B) && Cr[C] != Cr[A])
          return "critical region is not contiguous in po";
    }
  }
  for (unsigned C = 0; C < numCrs(); ++C) {
    EventSet Members;
    for (unsigned E = 0; E < Num; ++E)
      if (Cr[E] == static_cast<int>(C))
        Members.insert(E);
    if (Members.empty())
      continue;
    // First member must be a lock, last an unlock, of matching flavour.
    EventId First = 0, Last = 0;
    bool Init = false;
    for (EventId E : Members) {
      if (!Init) {
        First = Last = E;
        Init = true;
        continue;
      }
      if (Po.contains(E, First))
        First = E;
      if (Po.contains(Last, E))
        Last = E;
    }
    EventKind FK = Events[First].Kind, LK = Events[Last].Kind;
    bool NormalCr = FK == EventKind::Lock && LK == EventKind::Unlock;
    bool ElidedCr = FK == EventKind::TxLock && LK == EventKind::TxUnlock;
    if (!NormalCr && !ElidedCr)
      return "critical region not delimited by matching lock/unlock";
    for (EventId E : Members)
      if (E != First && E != Last && Events[E].isLockCall())
        return "nested lock call inside a critical region";
  }

  return nullptr;
}

uint64_t Execution::hash() const {
  uint64_t H = 0xcbf29ce484222325ull;
  auto Mix = [&H](uint64_t V) {
    H ^= V;
    H *= 0x100000001b3ull;
  };
  Mix(Num);
  for (unsigned E = 0; E < Num; ++E) {
    const Event &Ev = Events[E];
    Mix(static_cast<uint64_t>(Ev.Kind) | (uint64_t(Ev.Thread) << 8) |
        (uint64_t(Ev.Loc + 1) << 24) | (uint64_t(Ev.Order) << 40) |
        (uint64_t(Ev.Fence) << 48));
    Mix(static_cast<uint64_t>(Txn[E] + 1));
    Mix(static_cast<uint64_t>(Cr[E] + 1));
  }
  for (const Relation *Rel : {&Po, &Rf, &Co, &Addr, &Data, &Ctrl, &Rmw})
    for (unsigned A = 0; A < Num; ++A)
      Mix(Rel->successors(A).bits());
  Mix(AtomicTxns);
  return H;
}

bool Execution::operator==(const Execution &O) const {
  if (Num != O.Num || AtomicTxns != O.AtomicTxns)
    return false;
  for (unsigned E = 0; E < Num; ++E) {
    const Event &A = Events[E], &B = O.Events[E];
    if (A.Kind != B.Kind || A.Thread != B.Thread || A.Loc != B.Loc ||
        A.Order != B.Order || A.Fence != B.Fence || Txn[E] != O.Txn[E] ||
        Cr[E] != O.Cr[E])
      return false;
  }
  return Po == O.Po && Rf == O.Rf && Co == O.Co && Addr == O.Addr &&
         Data == O.Data && Ctrl == O.Ctrl && Rmw == O.Rmw;
}

std::string Execution::dump() const {
  std::string Out;
  char Buf[128];
  for (unsigned E = 0; E < Num; ++E) {
    const Event &Ev = Events[E];
    const char *Kind = eventKindName(Ev.Kind);
    snprintf(Buf, sizeof(Buf), "%c: %s", 'a' + E, Kind);
    Out += Buf;
    if (Ev.isFence()) {
      Out += ":";
      Out += fenceKindName(Ev.Fence);
    }
    if (Ev.Loc >= 0) {
      snprintf(Buf, sizeof(Buf), " %c", 'x' + Ev.Loc);
      Out += Buf;
    }
    if (Ev.Order != MemOrder::NonAtomic) {
      Out += " ";
      Out += memOrderName(Ev.Order);
    }
    snprintf(Buf, sizeof(Buf), " (T%u)", Ev.Thread);
    Out += Buf;
    if (Txn[E] != kNoClass) {
      snprintf(Buf, sizeof(Buf), " [txn %d%s]", Txn[E],
               ((AtomicTxns >> Txn[E]) & 1) ? " atomic" : "");
      Out += Buf;
    }
    if (Cr[E] != kNoClass) {
      snprintf(Buf, sizeof(Buf), " [cr %d]", Cr[E]);
      Out += Buf;
    }
    Out += "\n";
  }
  struct {
    const char *Name;
    const Relation *Rel;
  } Rels[] = {{"po", &Po},     {"rf", &Rf},   {"co", &Co},  {"addr", &Addr},
              {"data", &Data}, {"ctrl", &Ctrl}, {"rmw", &Rmw}};
  for (const auto &[Name, Rel] : Rels) {
    if (Rel->isEmpty())
      continue;
    Out += Name;
    Out += ":";
    Rel->forEachPair([&](EventId A, EventId B) {
      snprintf(Buf, sizeof(Buf), " %c->%c", 'a' + A, 'a' + B);
      Out += Buf;
    });
    Out += "\n";
  }
  return Out;
}
